//! Grid access views: the Rust incarnation of the Pochoir compiler's *code cloning* and
//! *loop indexing* optimizations (paper, Section 4).
//!
//! The user's kernel is written once against the [`GridAccess`] trait.  The engines then
//! instantiate it with different views:
//!
//! * [`InteriorView`] — the *interior clone* with the `--split-pointer` indexing style:
//!   raw stride arithmetic, no boundary handling, no bounds checks in release builds.
//! * [`CheckedInteriorView`] — the *interior clone* with the `--split-macro-shadow`
//!   indexing style: the same address computation but with bounds checks left in.
//! * [`BoundaryView`] — the *boundary clone*: accepts virtual (wrapped) coordinates and
//!   resolves off-domain reads through the array's boundary function.
//! * [`TracingView`] — wraps any access pattern and reports every touched address to an
//!   [`AccessTracer`] (used by the cache-miss experiments of Figure 10).
//!
//! Monomorphization of the kernel over these view types is precisely the kernel cloning
//! the Pochoir compiler performs as a source-to-source transformation.
//!
//! ## Row access and the `--split-pointer` correspondence
//!
//! The Pochoir compiler's fastest indexing mode, `--split-pointer`, rewrites the interior
//! clone so that each array reference becomes an incremented unit-stride pointer instead
//! of a macro that recomputes `slice·S + x₀·s₀ + … + x_{d-1}` per access.  The analog
//! here is the optional row API on [`GridAccess`]: [`InteriorView`] resolves a row's base
//! address once ([`GridAccess::row`] / [`GridAccess::row_out`]) and row-aware kernels
//! then walk plain slices, while [`CheckedInteriorView`] deliberately does **not**
//! implement the row API so that it keeps paying the full per-access address computation
//! plus bounds checks — preserving exactly the contrast Figure 13 measures.

use crate::boundary::wrap;
use crate::grid::{RawGrid, RowWriter};

/// Read/write access to a space-time grid, as seen by a stencil kernel.
///
/// Besides the per-point `get`/`set`, a view may expose whole grid **rows** along the
/// unit-stride (last) dimension through [`GridAccess::row`] / [`GridAccess::row_out`].
/// Row access is the paper's `--split-pointer` indexing style: the address of a row is
/// resolved once and the row is then walked at unit stride.  The default implementations
/// return `None`, which makes row-aware kernels (see
/// [`StencilKernel::update_row`](crate::kernel::StencilKernel::update_row)) fall back to
/// their per-point loop — so views that must observe or check every access (the boundary
/// clone, the tracing view, the checked-index ablation) keep doing exactly that.
pub trait GridAccess<T: Copy, const D: usize> {
    /// Reads the value at time `t`, position `x`.
    fn get(&self, t: i64, x: [i64; D]) -> T;
    /// Writes the value at time `t`, position `x`.
    fn set(&self, t: i64, x: [i64; D], value: T);
    /// The spatial extent along `dim` (provided so kernels can depend on the domain size).
    fn size(&self, dim: usize) -> i64;

    /// Read-only row of `len` elements starting at `(t, x)` along the last dimension,
    /// when this view can hand out direct unit-stride storage.
    ///
    /// # Safety
    ///
    /// The row must be in-domain (`x` on every axis, `x[D-1] + len` within the last
    /// extent), and none of its elements may be written — through [`GridAccess::set`],
    /// [`GridAccess::row_out`] or any other handle — while the returned slice is live.
    /// Kernels satisfy this by reading rows only of time slices they do not write
    /// (they write `t + 1`, they read `t`, `t − 1`, …).
    #[inline]
    unsafe fn row(&self, _t: i64, _x: [i64; D], _len: usize) -> Option<&[T]> {
        None
    }

    /// Unit-stride write cursor over the row of `len` elements starting at `(t, x)`,
    /// when this view can hand out direct storage.
    ///
    /// # Safety
    ///
    /// Same contract as [`GridAccess::row`]: in-domain, and the written elements must
    /// not overlap any live row slice.
    #[inline]
    unsafe fn row_out(&self, _t: i64, _x: [i64; D], _len: usize) -> Option<RowWriter<'_, T>> {
        None
    }
}

/// Observer of raw memory traffic, implemented by the cache simulator.
pub trait AccessTracer {
    /// Called for every read of `bytes` bytes at byte address `addr`.
    fn on_read(&self, addr: usize, bytes: usize);
    /// Called for every write of `bytes` bytes at byte address `addr`.
    fn on_write(&self, addr: usize, bytes: usize);
}

/// The interior clone with unchecked raw-offset indexing (the `--split-pointer` analog).
#[derive(Clone, Copy)]
pub struct InteriorView<'a, T, const D: usize> {
    grid: RawGrid<'a, T, D>,
}

impl<'a, T: Copy, const D: usize> InteriorView<'a, T, D> {
    /// Wraps a raw grid.
    pub fn new(grid: RawGrid<'a, T, D>) -> Self {
        InteriorView { grid }
    }
}

impl<'a, T: Copy, const D: usize> GridAccess<T, D> for InteriorView<'a, T, D> {
    #[inline(always)]
    fn get(&self, t: i64, x: [i64; D]) -> T {
        self.grid.read(t, x)
    }

    #[inline(always)]
    fn set(&self, t: i64, x: [i64; D], value: T) {
        self.grid.write(t, x, value)
    }

    #[inline(always)]
    fn size(&self, dim: usize) -> i64 {
        self.grid.sizes()[dim]
    }

    #[inline(always)]
    unsafe fn row(&self, t: i64, x: [i64; D], len: usize) -> Option<&[T]> {
        // Safety: forwarded contract — the caller keeps the row in-domain and unwritten
        // while the slice is live.
        Some(unsafe { self.grid.row(t, x, len) })
    }

    #[inline(always)]
    unsafe fn row_out(&self, t: i64, x: [i64; D], len: usize) -> Option<RowWriter<'_, T>> {
        // Safety: forwarded contract (see `row`).
        Some(unsafe { self.grid.row_out(t, x, len) })
    }
}

/// The interior clone with bounds-checked indexing (the `--split-macro-shadow` analog).
///
/// Both views perform the same address computation; this one keeps the range checks that
/// the optimized pointer-style clone elides, which is what the paper's Figure 13 compares.
/// It also deliberately leaves the row API unimplemented: every access pays the full
/// per-point address computation, as the macro-shadow indexing mode does.
#[derive(Clone, Copy)]
pub struct CheckedInteriorView<'a, T, const D: usize> {
    grid: RawGrid<'a, T, D>,
}

impl<'a, T: Copy, const D: usize> CheckedInteriorView<'a, T, D> {
    /// Wraps a raw grid.
    pub fn new(grid: RawGrid<'a, T, D>) -> Self {
        CheckedInteriorView { grid }
    }
}

impl<'a, T: Copy, const D: usize> GridAccess<T, D> for CheckedInteriorView<'a, T, D> {
    #[inline]
    fn get(&self, t: i64, x: [i64; D]) -> T {
        let sizes = self.grid.sizes();
        for d in 0..D {
            assert!(
                x[d] >= 0 && x[d] < sizes[d],
                "interior access out of range on axis {d}: {} (size {})",
                x[d],
                sizes[d]
            );
        }
        self.grid.read(t, x)
    }

    #[inline]
    fn set(&self, t: i64, x: [i64; D], value: T) {
        let sizes = self.grid.sizes();
        for d in 0..D {
            assert!(
                x[d] >= 0 && x[d] < sizes[d],
                "interior write out of range on axis {d}: {} (size {})",
                x[d],
                sizes[d]
            );
        }
        self.grid.write(t, x, value)
    }

    #[inline]
    fn size(&self, dim: usize) -> i64 {
        self.grid.sizes()[dim]
    }
}

/// The boundary clone: reads that leave the domain are resolved by the boundary function;
/// writes to virtual (wrapped) coordinates are folded back into the true domain.
///
/// This is the unified periodic/nonperiodic mechanism of Section 4: the decomposition may
/// describe a zoid in virtual coordinates, and only here — in the base case of the
/// boundary clone — are true coordinates recovered by a modulo computation.
#[derive(Clone, Copy)]
pub struct BoundaryView<'a, T, const D: usize> {
    grid: RawGrid<'a, T, D>,
}

impl<'a, T: Copy, const D: usize> BoundaryView<'a, T, D> {
    /// Wraps a raw grid.
    pub fn new(grid: RawGrid<'a, T, D>) -> Self {
        BoundaryView { grid }
    }

    #[inline]
    fn fold(&self, x: [i64; D]) -> [i64; D] {
        let sizes = self.grid.sizes();
        let mut w = x;
        for d in 0..D {
            if w[d] >= sizes[d] || w[d] < 0 {
                w[d] = wrap(w[d], sizes[d]);
            }
        }
        w
    }
}

impl<'a, T: Copy, const D: usize> GridAccess<T, D> for BoundaryView<'a, T, D> {
    #[inline]
    fn get(&self, t: i64, x: [i64; D]) -> T {
        self.grid.read_with_boundary(t, x)
    }

    #[inline]
    fn set(&self, t: i64, x: [i64; D], value: T) {
        // Writes always target the home cell of some in-domain point; if the caller used
        // virtual coordinates we wrap them back into the domain.
        let w = self.fold(x);
        self.grid.write(t, w, value)
    }

    #[inline]
    fn size(&self, dim: usize) -> i64 {
        self.grid.sizes()[dim]
    }
}

/// A view adapter that reports the byte address of every access to an [`AccessTracer`]
/// and then forwards to boundary-clone semantics.
pub struct TracingView<'a, 't, T, const D: usize, C: AccessTracer> {
    grid: RawGrid<'a, T, D>,
    tracer: &'t C,
}

impl<'a, 't, T: Copy, const D: usize, C: AccessTracer> TracingView<'a, 't, T, D, C> {
    /// Wraps a raw grid with a tracer.
    pub fn new(grid: RawGrid<'a, T, D>, tracer: &'t C) -> Self {
        TracingView { grid, tracer }
    }

    #[inline]
    fn addr(&self, t: i64, x: [i64; D]) -> usize {
        self.grid.offset(t, x) * self.grid.element_bytes()
    }
}

impl<'a, 't, T: Copy, const D: usize, C: AccessTracer> GridAccess<T, D>
    for TracingView<'a, 't, T, D, C>
{
    fn get(&self, t: i64, x: [i64; D]) -> T {
        if self.grid.in_domain(x) {
            self.tracer
                .on_read(self.addr(t, x), self.grid.element_bytes());
            self.grid.read(t, x)
        } else {
            // Boundary resolution may itself touch in-domain memory; trace those reads too.
            let tracer = self.tracer;
            let grid = self.grid;
            let read = move |tt: i64, xx: [i64; D]| {
                tracer.on_read(
                    grid.offset(tt, xx) * grid.element_bytes(),
                    grid.element_bytes(),
                );
                grid.read(tt, xx)
            };
            self.grid.boundary().resolve(&read, self.grid.sizes(), t, x)
        }
    }

    fn set(&self, t: i64, x: [i64; D], value: T) {
        let sizes = self.grid.sizes();
        let mut w = x;
        for d in 0..D {
            if w[d] < 0 || w[d] >= sizes[d] {
                w[d] = wrap(w[d], sizes[d]);
            }
        }
        self.tracer
            .on_write(self.addr(t, w), self.grid.element_bytes());
        self.grid.write(t, w, value)
    }

    fn size(&self, dim: usize) -> i64 {
        self.grid.sizes()[dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::Boundary;
    use crate::grid::PochoirArray;
    use std::cell::Cell;

    fn make_grid() -> PochoirArray<f64, 2> {
        let mut a: PochoirArray<f64, 2> = PochoirArray::new([4, 4]);
        a.register_boundary(Boundary::Constant(-1.0));
        a.fill_time_slice(0, |x| (x[0] * 4 + x[1]) as f64);
        a
    }

    #[test]
    fn interior_view_reads_and_writes() {
        let mut a = make_grid();
        let raw = a.raw();
        let v = InteriorView::new(raw);
        assert_eq!(v.get(0, [2, 3]), 11.0);
        v.set(1, [2, 3], 99.0);
        assert_eq!(v.get(1, [2, 3]), 99.0);
        assert_eq!(v.size(0), 4);
    }

    #[test]
    fn checked_view_matches_interior_in_domain() {
        let mut a = make_grid();
        let raw = a.raw();
        let iv = InteriorView::new(raw);
        let cv = CheckedInteriorView::new(raw);
        for x0 in 0..4 {
            for x1 in 0..4 {
                assert_eq!(iv.get(0, [x0, x1]), cv.get(0, [x0, x1]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn checked_view_panics_out_of_domain() {
        let mut a = make_grid();
        let raw = a.raw();
        let cv = CheckedInteriorView::new(raw);
        let _ = cv.get(0, [4, 0]);
    }

    #[test]
    fn boundary_view_resolves_off_domain_reads() {
        let mut a = make_grid();
        let raw = a.raw();
        let bv = BoundaryView::new(raw);
        assert_eq!(bv.get(0, [-1, 0]), -1.0);
        assert_eq!(bv.get(0, [1, 1]), 5.0);
    }

    #[test]
    fn boundary_view_folds_virtual_writes() {
        let mut a = make_grid();
        {
            let raw = a.raw();
            let bv = BoundaryView::new(raw);
            // Virtual coordinate 5 on a size-4 axis is true coordinate 1.
            bv.set(1, [5, 2], 7.0);
        }
        assert_eq!(a.get(1, [1, 2]), 7.0);
    }

    #[derive(Default)]
    struct CountingTracer {
        reads: Cell<usize>,
        writes: Cell<usize>,
        last_addr: Cell<usize>,
    }

    impl AccessTracer for CountingTracer {
        fn on_read(&self, addr: usize, _bytes: usize) {
            self.reads.set(self.reads.get() + 1);
            self.last_addr.set(addr);
        }
        fn on_write(&self, addr: usize, _bytes: usize) {
            self.writes.set(self.writes.get() + 1);
            self.last_addr.set(addr);
        }
    }

    #[test]
    fn tracing_view_counts_accesses() {
        let mut a = make_grid();
        let raw = a.raw();
        let tracer = CountingTracer::default();
        let tv = TracingView::new(raw, &tracer);
        let _ = tv.get(0, [1, 1]);
        let _ = tv.get(0, [2, 2]);
        tv.set(1, [0, 0], 5.0);
        assert_eq!(tracer.reads.get(), 2);
        assert_eq!(tracer.writes.get(), 1);
    }

    #[test]
    fn tracing_view_traces_boundary_probe_reads() {
        let mut a: PochoirArray<f64, 2> = PochoirArray::new([4, 4]);
        a.register_boundary(Boundary::Periodic);
        a.fill_time_slice(0, |x| (x[0] + x[1]) as f64);
        let raw = a.raw();
        let tracer = CountingTracer::default();
        let tv = TracingView::new(raw, &tracer);
        // Off-domain read under a periodic boundary touches in-domain memory: traced.
        let v = tv.get(0, [-1, 0]);
        assert_eq!(v, 3.0);
        assert_eq!(tracer.reads.get(), 1);
    }

    #[test]
    fn tracing_addresses_follow_row_major_layout() {
        let mut a = make_grid();
        let raw = a.raw();
        let tracer = CountingTracer::default();
        let tv = TracingView::new(raw, &tracer);
        let _ = tv.get(0, [0, 0]);
        let a0 = tracer.last_addr.get();
        let _ = tv.get(0, [0, 1]);
        let a1 = tracer.last_addr.get();
        assert_eq!(a1 - a0, std::mem::size_of::<f64>());
    }
}
