//! Stencil kernels (`Pochoir_Kernel` in the paper, Section 2).
//!
//! A kernel updates one grid point at kernel-invocation time `t` and position `x`,
//! reading and writing the grid only through a [`GridAccess`] view.  Because the kernel
//! is generic over the view type, `rustc` produces the interior and boundary *clones* the
//! Pochoir compiler would otherwise generate by source-to-source translation (Section 4).

use crate::view::GridAccess;

/// A stencil kernel: the update rule applied at every space-time grid point.
///
/// Implementations are usually tiny structs holding the physical constants of the update
/// equation, e.g. the `CX`/`CY` coefficients of the 2D heat equation in Figure 6.
pub trait StencilKernel<T: Copy, const D: usize>: Sync {
    /// Applies the update at invocation time `t` and spatial position `x`.
    ///
    /// All grid traffic must go through `grid`, and for Pochoir-compliant kernels the
    /// accessed offsets must be covered by the declared [`Shape`](crate::shape::Shape)
    /// (checked by the Phase-1 interpreter in `pochoir-dsl`).
    fn update<A: GridAccess<T, D>>(&self, grid: &A, t: i64, x: [i64; D]);

    /// Applies the update to the `len` consecutive points starting at `x0` along the
    /// unit-stride (last) dimension, at invocation time `t`.
    ///
    /// This is the kernel-side half of the row-oriented base case (the analog of the
    /// Pochoir compiler's `--split-pointer` interior clone).  The default implementation
    /// simply calls [`StencilKernel::update`] per point and is always correct;
    /// implementations may override it with a vectorizable inner loop over the row
    /// slices exposed by [`GridAccess::row`] / [`GridAccess::row_out`], **provided** the
    /// override computes bit-identical results to the per-point loop (same operations in
    /// the same order) — engine equivalence tests enforce this.
    ///
    /// Overrides must fall back to the per-point loop ([`update_row_pointwise`]) when
    /// the view does not expose rows (`row()` returning `None`), which is how boundary,
    /// tracing and checked-index views keep observing every access.  The row accessors
    /// are `unsafe`: overrides must uphold their contract (rows in-domain, written
    /// elements disjoint from live row slices — reading `t`/`t − 1` and writing `t + 1`
    /// satisfies it).
    #[inline]
    fn update_row<A: GridAccess<T, D>>(&self, grid: &A, t: i64, x0: [i64; D], len: i64) {
        update_row_pointwise(self, grid, t, x0, len);
    }
}

/// Applies `kernel.update` to the `len` consecutive points starting at `x0` along the
/// unit-stride (last) dimension.
///
/// This is the canonical per-point row loop: the default body of
/// [`StencilKernel::update_row`], and the fallback that row-overriding kernels call when
/// the view does not expose rows.  Sharing it keeps every fallback in sync with the
/// default semantics.
#[inline]
pub fn update_row_pointwise<T, K, A, const D: usize>(
    kernel: &K,
    grid: &A,
    t: i64,
    x0: [i64; D],
    len: i64,
) where
    T: Copy,
    K: StencilKernel<T, D> + ?Sized,
    A: GridAccess<T, D>,
{
    let mut p = x0;
    let lo = x0[D - 1];
    for v in lo..lo + len {
        p[D - 1] = v;
        kernel.update(grid, t, p);
    }
}

impl<T: Copy, const D: usize, K: StencilKernel<T, D>> StencilKernel<T, D> for &K {
    fn update<A: GridAccess<T, D>>(&self, grid: &A, t: i64, x: [i64; D]) {
        (**self).update(grid, t, x)
    }

    fn update_row<A: GridAccess<T, D>>(&self, grid: &A, t: i64, x0: [i64; D], len: i64) {
        (**self).update_row(grid, t, x0, len)
    }
}

/// A stencil *problem definition*: a shape plus metadata the engines need.
///
/// This is the static information the paper stores in a `Pochoir_<dim>D` object.
#[derive(Clone, Debug)]
pub struct StencilSpec<const D: usize> {
    shape: crate::shape::Shape<D>,
}

impl<const D: usize> StencilSpec<D> {
    /// Wraps a validated shape.
    pub fn new(shape: crate::shape::Shape<D>) -> Self {
        StencilSpec { shape }
    }

    /// The declared shape.
    pub fn shape(&self) -> &crate::shape::Shape<D> {
        &self.shape
    }

    /// The per-dimension slopes used by the trapezoidal decomposition.
    pub fn slopes(&self) -> [i64; D] {
        self.shape.cut_slopes()
    }

    /// The per-dimension maximal spatial reach of the kernel.
    pub fn reach(&self) -> [i64; D] {
        self.shape.reach()
    }

    /// The stencil depth *k*.
    pub fn depth(&self) -> i32 {
        self.shape.depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::PochoirArray;
    use crate::shape::{star_shape, ShapeCell};
    use crate::view::InteriorView;

    /// 1D three-point averaging kernel used by several unit tests.
    pub struct Avg1D;

    impl StencilKernel<f64, 1> for Avg1D {
        fn update<A: GridAccess<f64, 1>>(&self, g: &A, t: i64, x: [i64; 1]) {
            let v =
                0.25 * g.get(t, [x[0] - 1]) + 0.5 * g.get(t, [x[0]]) + 0.25 * g.get(t, [x[0] + 1]);
            g.set(t + 1, x, v);
        }
    }

    #[test]
    fn kernel_updates_through_view() {
        let mut a: PochoirArray<f64, 1> = PochoirArray::new([8]);
        a.fill_time_slice(0, |x| x[0] as f64);
        let raw = a.raw();
        let view = InteriorView::new(raw);
        Avg1D.update(&view, 0, [3]);
        // 0.25*2 + 0.5*3 + 0.25*4 = 3.0
        assert_eq!(view.get(1, [3]), 3.0);
    }

    #[test]
    fn kernel_by_reference_also_works() {
        let mut a: PochoirArray<f64, 1> = PochoirArray::new([8]);
        a.fill_time_slice(0, |x| x[0] as f64);
        let raw = a.raw();
        let view = InteriorView::new(raw);
        let k = &Avg1D;
        k.update(&view, 0, [4]);
        assert_eq!(view.get(1, [4]), 4.0);
    }

    #[test]
    fn spec_exposes_shape_quantities() {
        let spec = StencilSpec::new(star_shape::<2>(1));
        assert_eq!(spec.depth(), 1);
        assert_eq!(spec.slopes(), [1, 1]);
        assert_eq!(spec.reach(), [1, 1]);
    }

    #[test]
    fn spec_clamps_cut_slopes() {
        let shape = crate::shape::Shape::must(vec![
            ShapeCell::new(1, [0, 0]),
            ShapeCell::new(0, [0, 0]),
            ShapeCell::new(0, [1, 0]),
            ShapeCell::new(0, [-1, 0]),
        ]);
        let spec = StencilSpec::new(shape);
        assert_eq!(spec.slopes(), [1, 1]); // dimension 1 clamped up from 0
        assert_eq!(spec.reach(), [1, 0]);
    }
}
