//! Boundary conditions (`Pochoir_Boundary` in the paper, Sections 2 and 4).
//!
//! Every Pochoir array has exactly one boundary function; it supplies a value whenever
//! the kernel reads a point outside the computing domain.  The paper shows periodic,
//! Dirichlet and Neumann conditions (Figure 11) and emphasises that arbitrary
//! user-defined conditions — including per-axis mixtures such as a cylinder — must be
//! expressible.  This module provides all of those.

use std::sync::Arc;

/// How one spatial axis treats an out-of-range coordinate (used by [`Boundary::Mixed`]).
#[derive(Clone)]
pub enum AxisRule<T> {
    /// Wrap the coordinate modulo the axis length (torus behaviour).
    Periodic,
    /// Clamp the coordinate to the nearest in-domain cell (zero-derivative / Neumann).
    Clamp,
    /// Return a fixed value as soon as this axis is out of range (Dirichlet).
    Constant(T),
}

impl<T: std::fmt::Debug> std::fmt::Debug for AxisRule<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AxisRule::Periodic => write!(f, "Periodic"),
            AxisRule::Clamp => write!(f, "Clamp"),
            AxisRule::Constant(v) => write!(f, "Constant({v:?})"),
        }
    }
}

/// A read-only window onto the in-domain portion of a Pochoir array, handed to custom
/// boundary functions so they can derive boundary values from interior values (as the
/// periodic boundary of the paper's Figure 6 does).
pub struct BoundaryProbe<'a, T, const D: usize> {
    read: &'a dyn Fn(i64, [i64; D]) -> T,
    sizes: [i64; D],
}

impl<'a, T: Copy, const D: usize> BoundaryProbe<'a, T, D> {
    /// Creates a probe over `sizes` with the given in-domain reader.
    pub fn new(read: &'a dyn Fn(i64, [i64; D]) -> T, sizes: [i64; D]) -> Self {
        BoundaryProbe { read, sizes }
    }

    /// The spatial extent of the array along `dim` (`a.size(dim)` in the paper).
    pub fn size(&self, dim: usize) -> i64 {
        self.sizes[dim]
    }

    /// Reads an **in-domain** grid value.  Panics if the coordinates are still out of
    /// range, which would otherwise recurse into the boundary function forever.
    pub fn get(&self, t: i64, x: [i64; D]) -> T {
        for (d, (&c, &size)) in x.iter().zip(self.sizes.iter()).enumerate() {
            assert!(
                c >= 0 && c < size,
                "boundary function probed out-of-domain coordinate {c} on axis {d} (size {size})"
            );
        }
        (self.read)(t, x)
    }
}

/// Type of user-supplied boundary closures.
pub type BoundaryFn<T, const D: usize> =
    dyn for<'a> Fn(&BoundaryProbe<'a, T, D>, i64, [i64; D]) -> T + Send + Sync;

/// The boundary condition attached to a [`PochoirArray`](crate::grid::PochoirArray).
#[derive(Clone)]
pub enum Boundary<T, const D: usize> {
    /// All axes wrap around (torus); the paper's "periodic" stencils.
    Periodic,
    /// Dirichlet condition with a fixed value everywhere outside the domain.
    Constant(T),
    /// Dirichlet condition whose value may depend on time and position
    /// (paper Figure 11a: `return 100 + 0.2*t`).
    ConstantFn(Arc<dyn Fn(i64, [i64; D]) -> T + Send + Sync>),
    /// Neumann condition with zero derivative: out-of-range coordinates are clamped to
    /// the nearest domain cell (paper Figure 11b).
    Clamp,
    /// Different rule per axis, e.g. a cylinder (periodic in one axis, clamped in the
    /// other) as discussed in Section 4 of the paper.
    Mixed([AxisRule<T>; D]),
    /// Fully general user-defined boundary function.
    Custom(Arc<BoundaryFn<T, D>>),
}

impl<T: std::fmt::Debug, const D: usize> std::fmt::Debug for Boundary<T, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Boundary::Periodic => write!(f, "Periodic"),
            Boundary::Constant(v) => write!(f, "Constant({v:?})"),
            Boundary::ConstantFn(_) => write!(f, "ConstantFn(..)"),
            Boundary::Clamp => write!(f, "Clamp"),
            Boundary::Mixed(rules) => f.debug_tuple("Mixed").field(rules).finish(),
            Boundary::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

/// Wraps `x` into `[0, n)` (mathematical modulus).
#[inline]
pub fn wrap(x: i64, n: i64) -> i64 {
    let r = x % n;
    if r < 0 {
        r + n
    } else {
        r
    }
}

/// Clamps `x` into `[0, n)`.
#[inline]
pub fn clamp(x: i64, n: i64) -> i64 {
    if x < 0 {
        0
    } else if x >= n {
        n - 1
    } else {
        x
    }
}

impl<T: Copy, const D: usize> Boundary<T, D> {
    /// Builds a custom boundary from a closure.
    pub fn custom<F>(f: F) -> Self
    where
        F: for<'a> Fn(&BoundaryProbe<'a, T, D>, i64, [i64; D]) -> T + Send + Sync + 'static,
    {
        Boundary::Custom(Arc::new(f))
    }

    /// Builds a time/position-dependent Dirichlet boundary.
    pub fn constant_fn<F>(f: F) -> Self
    where
        F: Fn(i64, [i64; D]) -> T + Send + Sync + 'static,
    {
        Boundary::ConstantFn(Arc::new(f))
    }

    /// Resolves an out-of-domain access at time `t`, position `x`.
    ///
    /// `read` reads an in-domain value of the array; `sizes` are the spatial extents.
    /// `x` is allowed to be arbitrarily far outside the domain.
    pub fn resolve(
        &self,
        read: &dyn Fn(i64, [i64; D]) -> T,
        sizes: [i64; D],
        t: i64,
        x: [i64; D],
    ) -> T {
        match self {
            Boundary::Periodic => {
                let mut w = x;
                for d in 0..D {
                    w[d] = wrap(w[d], sizes[d]);
                }
                read(t, w)
            }
            Boundary::Constant(v) => *v,
            Boundary::ConstantFn(f) => f(t, x),
            Boundary::Clamp => {
                let mut w = x;
                for d in 0..D {
                    w[d] = clamp(w[d], sizes[d]);
                }
                read(t, w)
            }
            Boundary::Mixed(rules) => {
                let mut w = x;
                for d in 0..D {
                    if w[d] < 0 || w[d] >= sizes[d] {
                        match &rules[d] {
                            AxisRule::Periodic => w[d] = wrap(w[d], sizes[d]),
                            AxisRule::Clamp => w[d] = clamp(w[d], sizes[d]),
                            AxisRule::Constant(v) => return *v,
                        }
                    }
                }
                read(t, w)
            }
            Boundary::Custom(f) => {
                let probe = BoundaryProbe::new(read, sizes);
                f(&probe, t, x)
            }
        }
    }

    /// True if this boundary makes every axis periodic (used by engines to decide whether
    /// the whole problem is a torus).
    pub fn is_fully_periodic(&self) -> bool {
        match self {
            Boundary::Periodic => true,
            Boundary::Mixed(rules) => rules.iter().all(|r| matches!(r, AxisRule::Periodic)),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_read(t: i64, x: [i64; 2]) -> f64 {
        (t * 100 + x[0] * 10 + x[1]) as f64
    }

    #[test]
    fn wrap_handles_negative_values() {
        assert_eq!(wrap(-1, 10), 9);
        assert_eq!(wrap(10, 10), 0);
        assert_eq!(wrap(-11, 10), 9);
        assert_eq!(wrap(3, 10), 3);
    }

    #[test]
    fn clamp_limits_to_domain() {
        assert_eq!(clamp(-5, 10), 0);
        assert_eq!(clamp(12, 10), 9);
        assert_eq!(clamp(4, 10), 4);
    }

    #[test]
    fn periodic_wraps_both_axes() {
        let b: Boundary<f64, 2> = Boundary::Periodic;
        let v = b.resolve(&probe_read, [5, 5], 3, [-1, 6]);
        assert_eq!(v, probe_read(3, [4, 1]));
    }

    #[test]
    fn constant_returns_value() {
        let b: Boundary<f64, 2> = Boundary::Constant(7.5);
        assert_eq!(b.resolve(&probe_read, [5, 5], 0, [-1, 0]), 7.5);
    }

    #[test]
    fn constant_fn_sees_time() {
        // Figure 11(a): 100 + 0.2 t.
        let b: Boundary<f64, 2> = Boundary::constant_fn(|t, _| 100.0 + 0.2 * t as f64);
        assert_eq!(b.resolve(&probe_read, [5, 5], 10, [-1, 0]), 102.0);
    }

    #[test]
    fn clamp_mirrors_neumann_zero_derivative() {
        let b: Boundary<f64, 2> = Boundary::Clamp;
        // Figure 11(b): out-of-range coordinates snap to the edge.
        assert_eq!(
            b.resolve(&probe_read, [5, 5], 2, [-3, 7]),
            probe_read(2, [0, 4])
        );
    }

    #[test]
    fn mixed_cylinder_behaviour() {
        // Periodic in axis 0, clamped in axis 1: a cylinder.
        let b: Boundary<f64, 2> = Boundary::Mixed([AxisRule::Periodic, AxisRule::Clamp]);
        assert_eq!(
            b.resolve(&probe_read, [5, 5], 1, [-1, 9]),
            probe_read(1, [4, 4])
        );
    }

    #[test]
    fn mixed_constant_short_circuits() {
        let b: Boundary<f64, 2> = Boundary::Mixed([AxisRule::Constant(-1.0), AxisRule::Periodic]);
        assert_eq!(b.resolve(&probe_read, [5, 5], 1, [-1, 2]), -1.0);
        // In-range on axis 0, wrapped on axis 1.
        assert_eq!(
            b.resolve(&probe_read, [5, 5], 1, [2, -1]),
            probe_read(1, [2, 4])
        );
    }

    #[test]
    fn custom_boundary_can_probe_interior() {
        // Reproduce the paper's periodic boundary (Figure 6) as a custom function.
        let b: Boundary<f64, 2> = Boundary::custom(|probe, t, x| {
            let w = [wrap(x[0], probe.size(0)), wrap(x[1], probe.size(1))];
            probe.get(t, w)
        });
        assert_eq!(
            b.resolve(&probe_read, [5, 5], 4, [5, -1]),
            probe_read(4, [0, 4])
        );
    }

    #[test]
    #[should_panic(expected = "out-of-domain")]
    fn probe_rejects_out_of_domain_reads() {
        let read = |t: i64, x: [i64; 2]| probe_read(t, x);
        let probe = BoundaryProbe::new(&read, [5, 5]);
        let _ = probe.get(0, [5, 0]);
    }

    #[test]
    fn fully_periodic_detection() {
        assert!(Boundary::<f64, 2>::Periodic.is_fully_periodic());
        assert!(
            Boundary::<f64, 2>::Mixed([AxisRule::Periodic, AxisRule::Periodic]).is_fully_periodic()
        );
        assert!(!Boundary::<f64, 2>::Clamp.is_fully_periodic());
        assert!(
            !Boundary::<f64, 2>::Mixed([AxisRule::Periodic, AxisRule::Clamp]).is_fully_periodic()
        );
    }
}
