//! Runtime SIMD dispatch for the row-oriented base cases.
//!
//! The paper's generated kernels get their base-case speed from loops the C++
//! compiler can vectorize; here the row kernels carry explicit SSE2/AVX2 bodies
//! (in `pochoir-stencils`) and this module decides, once per executor run, which
//! body the rows dispatch to:
//!
//! 1. The plan's [`SimdPolicy`] names the intent (`Auto`, `Force(isa)`, `Scalar`).
//! 2. [`resolve`] intersects that intent with what
//!    `is_x86_feature_detected!` reports on the running host — a forced ISA the
//!    host lacks degrades to scalar rather than faulting.
//! 3. The `POCHOIR_SIMD` environment variable (`off`/`scalar`, `sse2`, `avx2`,
//!    `auto`) overrides **everything**, including `Force`, so a deployment can
//!    pin or disable vectorization without recompiling.
//!
//! The resolved ISA is published process-wide (an atomic read per row, no
//! thread-local plumbing through the work-stealing pool); kernels consult
//! [`active`] at the top of `update_row`.  When two concurrently running
//! programs request different policies the last writer wins — harmless, because
//! every SIMD body is bitwise-equal to the scalar row loop; the choice is
//! purely a performance one.
//!
//! The module also keeps advisory per-ISA row counters (see [`note_row`]) that
//! the executor snapshots around each run and forwards to the runtime metrics.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// An instruction set a row kernel can be specialized for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SimdIsa {
    /// 128-bit SSE2 (baseline on every x86-64).
    Sse2,
    /// 256-bit AVX2.
    Avx2,
}

impl SimdIsa {
    /// Lower-case name used by `POCHOIR_SIMD`, tune profiles and BENCH reports.
    pub fn name(self) -> &'static str {
        match self {
            SimdIsa::Sse2 => "sse2",
            SimdIsa::Avx2 => "avx2",
        }
    }
}

/// How an [`ExecutionPlan`](crate::engine::ExecutionPlan) selects the row-kernel body.
///
/// Whatever the policy, SIMD bodies are bitwise-equal to the scalar row loop
/// (they replay the exact per-element operation order, lane by lane), so this
/// knob never changes results — only throughput.  The `POCHOIR_SIMD`
/// environment variable overrides the policy at run time; see [`resolve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SimdPolicy {
    /// Use the widest ISA the host supports (AVX2, then SSE2, then scalar).  Default.
    #[default]
    Auto,
    /// Use exactly this ISA — degrading to scalar if the host does not support it.
    Force(SimdIsa),
    /// Always run the scalar row loop.
    Scalar,
}

impl SimdPolicy {
    /// Stable label for profiles and reports: `auto`, `scalar`, `force-sse2`, `force-avx2`.
    pub fn label(self) -> &'static str {
        match self {
            SimdPolicy::Auto => "auto",
            SimdPolicy::Scalar => "scalar",
            SimdPolicy::Force(SimdIsa::Sse2) => "force-sse2",
            SimdPolicy::Force(SimdIsa::Avx2) => "force-avx2",
        }
    }

    /// Parses a policy label (the inverse of [`SimdPolicy::label`], also accepting the
    /// `POCHOIR_SIMD` spellings `off`, `sse2` and `avx2`).  Returns `None` for unknown
    /// strings.
    pub fn parse(s: &str) -> Option<SimdPolicy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" | "" => Some(SimdPolicy::Auto),
            "scalar" | "off" | "none" | "0" => Some(SimdPolicy::Scalar),
            "sse2" | "force-sse2" => Some(SimdPolicy::Force(SimdIsa::Sse2)),
            "avx2" | "force-avx2" => Some(SimdPolicy::Force(SimdIsa::Avx2)),
            _ => None,
        }
    }
}

/// True when the running host supports `isa` (always false off x86-64).
pub fn isa_detected(isa: SimdIsa) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        match isa {
            SimdIsa::Sse2 => is_x86_feature_detected!("sse2"),
            SimdIsa::Avx2 => is_x86_feature_detected!("avx2"),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = isa;
        false
    }
}

/// The widest ISA the running host supports, or `None` off x86-64.
pub fn detected() -> Option<SimdIsa> {
    if isa_detected(SimdIsa::Avx2) {
        Some(SimdIsa::Avx2)
    } else if isa_detected(SimdIsa::Sse2) {
        Some(SimdIsa::Sse2)
    } else {
        None
    }
}

/// Resolves a plan's policy against host detection and the `POCHOIR_SIMD`
/// environment variable; `None` means the scalar row loop.
///
/// `POCHOIR_SIMD` takes precedence over the policy — including `Force` — with
/// the spellings accepted by [`SimdPolicy::parse`]; an unparseable value is
/// ignored.  A forced ISA the host lacks resolves to `None` (scalar) rather
/// than faulting, so plans tuned on one host stay portable.
pub fn resolve(policy: SimdPolicy) -> Option<SimdIsa> {
    let effective = match std::env::var("POCHOIR_SIMD") {
        Ok(v) => SimdPolicy::parse(&v).unwrap_or(policy),
        Err(_) => policy,
    };
    match effective {
        SimdPolicy::Scalar => None,
        SimdPolicy::Auto => detected(),
        SimdPolicy::Force(isa) => isa_detected(isa).then_some(isa),
    }
}

/// The process-wide active ISA: 0 = scalar, 1 = SSE2, 2 = AVX2.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// Advisory count of rows executed by the SSE2 bodies since process start.
static ROWS_SSE2: AtomicU64 = AtomicU64::new(0);
/// Advisory count of rows executed by the AVX2 bodies since process start.
static ROWS_AVX2: AtomicU64 = AtomicU64::new(0);

/// Publishes the ISA row kernels should dispatch to (the executor calls this at
/// the top of every run, from the plan's resolved policy).
pub fn set_active(isa: Option<SimdIsa>) {
    let v = match isa {
        None => 0,
        Some(SimdIsa::Sse2) => 1,
        Some(SimdIsa::Avx2) => 2,
    };
    ACTIVE.store(v, Ordering::Relaxed);
}

/// The currently published ISA (`None` = scalar).  One relaxed atomic load;
/// kernels call this once per row.
#[inline]
pub fn active() -> Option<SimdIsa> {
    match ACTIVE.load(Ordering::Relaxed) {
        1 => Some(SimdIsa::Sse2),
        2 => Some(SimdIsa::Avx2),
        _ => None,
    }
}

/// Records one row executed by a SIMD body (called by the stencil kernels).
#[inline]
pub fn note_row(isa: SimdIsa) {
    match isa {
        SimdIsa::Sse2 => ROWS_SSE2.fetch_add(1, Ordering::Relaxed),
        SimdIsa::Avx2 => ROWS_AVX2.fetch_add(1, Ordering::Relaxed),
    };
}

/// Cumulative `(sse2, avx2)` SIMD row counts since process start.  The executor
/// snapshots this around a run and reports the delta to the runtime metrics.
pub fn rows_snapshot() -> (u64, u64) {
    (
        ROWS_SSE2.load(Ordering::Relaxed),
        ROWS_AVX2.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_through_parse() {
        for policy in [
            SimdPolicy::Auto,
            SimdPolicy::Scalar,
            SimdPolicy::Force(SimdIsa::Sse2),
            SimdPolicy::Force(SimdIsa::Avx2),
        ] {
            assert_eq!(SimdPolicy::parse(policy.label()), Some(policy));
        }
        assert_eq!(SimdPolicy::parse("off"), Some(SimdPolicy::Scalar));
        assert_eq!(
            SimdPolicy::parse("AVX2"),
            Some(SimdPolicy::Force(SimdIsa::Avx2))
        );
        assert_eq!(SimdPolicy::parse("bogus"), None);
    }

    #[test]
    fn scalar_policy_resolves_to_none() {
        // POCHOIR_SIMD is not set under `cargo test`; if it is, the env wins by
        // design and this assertion still holds for the `off`/`scalar` values
        // the CI matrix uses.
        let r = resolve(SimdPolicy::Scalar);
        if std::env::var("POCHOIR_SIMD").is_err() {
            assert_eq!(r, None);
        }
    }

    #[test]
    fn forced_isa_requires_detection() {
        if std::env::var("POCHOIR_SIMD").is_ok() {
            return;
        }
        for isa in [SimdIsa::Sse2, SimdIsa::Avx2] {
            let r = resolve(SimdPolicy::Force(isa));
            if isa_detected(isa) {
                assert_eq!(r, Some(isa));
            } else {
                assert_eq!(r, None);
            }
        }
    }

    #[test]
    fn auto_resolves_to_widest_detected() {
        if std::env::var("POCHOIR_SIMD").is_ok() {
            return;
        }
        assert_eq!(resolve(SimdPolicy::Auto), detected());
    }

    // NOTE: no unit test asserts exact `set_active`/`active` values here — the
    // global is also written by every engine-test run in this binary, so such a
    // test would race.  The end-to-end dispatch test lives in the stencils
    // crate's `simd_dispatch_env` integration test (its own process).

    #[test]
    fn row_counters_accumulate() {
        let (s0, a0) = rows_snapshot();
        note_row(SimdIsa::Sse2);
        note_row(SimdIsa::Avx2);
        note_row(SimdIsa::Avx2);
        let (s1, a1) = rows_snapshot();
        assert!(s1 > s0);
        assert!(a1 >= a0 + 2);
    }
}
