//! The Pochoir array (`Pochoir_Array` in the paper, Section 2): a d-dimensional spatial
//! grid with a small circular buffer of time slices.
//!
//! A stencil of depth *k* needs `k + 1` time slices, reused modulo `k + 1` as the
//! computation proceeds — exactly the storage discipline of the paper.  The user never
//! obtains an alias into the array (copy-in / copy-out), which leaves the layout under
//! the library's control.

use crate::boundary::Boundary;
use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Alignment (bytes) of grid storage: every time-slice base — and, thanks to padded
/// row strides, every interior row start — lands on a 64-byte boundary, one cache
/// line and the widest vector width we dispatch to (see [`crate::simd`]).
pub const GRID_ALIGN: usize = 64;

/// Elements of `T` per [`GRID_ALIGN`]-byte unit, or 1 when rows cannot be padded to
/// a whole number of elements (e.g. the 56-byte LBM cell `[f64; 7]`, whose rows stay
/// dense rather than wasting 8/7 of the slice).
fn row_pad_elems<T>() -> usize {
    let size = std::mem::size_of::<T>();
    if size > 0 && size <= GRID_ALIGN && GRID_ALIGN.is_multiple_of(size) {
        GRID_ALIGN / size
    } else {
        1
    }
}

/// A fixed-length, 64-byte-aligned heap buffer — the small aligned-alloc wrapper
/// behind [`PochoirArray`]'s storage.
///
/// Semantically a frozen `Vec<T>` (it derefs to `[T]` and clones), except the
/// allocation is guaranteed [`GRID_ALIGN`]-aligned so SIMD row kernels can rely on
/// the base address.  Only constructible for `T: Copy`, which is what lets `Drop`
/// skip per-element drop glue.
pub struct AlignedVec<T> {
    ptr: NonNull<T>,
    len: usize,
}

impl<T> AlignedVec<T> {
    fn layout(len: usize) -> Layout {
        let size = std::mem::size_of::<T>()
            .checked_mul(len)
            .expect("grid too large: allocation size overflow");
        let align = GRID_ALIGN.max(std::mem::align_of::<T>());
        Layout::from_size_align(size, align).expect("invalid grid layout")
    }

    fn alloc_uninit(len: usize) -> NonNull<T> {
        let layout = Self::layout(len);
        // Safety: the layout has non-zero size (checked by the caller).
        let raw = unsafe { alloc(layout) } as *mut T;
        NonNull::new(raw).unwrap_or_else(|| handle_alloc_error(layout))
    }

    fn is_dangling(len: usize) -> bool {
        len == 0 || std::mem::size_of::<T>() == 0
    }
}

impl<T: Copy> AlignedVec<T> {
    /// Allocates `len` elements, every one set to `value`.
    pub fn filled(len: usize, value: T) -> Self {
        if Self::is_dangling(len) {
            return AlignedVec {
                ptr: NonNull::dangling(),
                len,
            };
        }
        let ptr = Self::alloc_uninit(len);
        for i in 0..len {
            // Safety: i < len, within the fresh allocation; T: Copy has no drop glue.
            unsafe { ptr.as_ptr().add(i).write(value) };
        }
        AlignedVec { ptr, len }
    }
}

impl<T: Copy> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        if Self::is_dangling(self.len) {
            return AlignedVec {
                ptr: NonNull::dangling(),
                len: self.len,
            };
        }
        let ptr = Self::alloc_uninit(self.len);
        // Safety: both buffers hold `len` elements and cannot overlap.
        unsafe { std::ptr::copy_nonoverlapping(self.ptr.as_ptr(), ptr.as_ptr(), self.len) };
        AlignedVec { ptr, len: self.len }
    }
}

impl<T> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        if !Self::is_dangling(self.len) {
            // Elements are T: Copy by construction — no drop glue to run.
            // Safety: allocated with this exact layout in `alloc_uninit`.
            unsafe { dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.len)) };
        }
    }
}

impl<T> Deref for AlignedVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        // Safety: the buffer holds `len` initialized elements for its whole lifetime.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl<T> DerefMut for AlignedVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        // Safety: as above, plus `&mut self` guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

// Safety: AlignedVec owns its buffer exclusively, exactly like Vec<T>.
unsafe impl<T: Send> Send for AlignedVec<T> {}
unsafe impl<T: Sync> Sync for AlignedVec<T> {}

/// Precomputed reciprocal for the division-free time wrap (see [`wrap_time`]).
#[inline]
fn time_magic(time_slices: usize) -> u64 {
    (u64::MAX / time_slices as u64).wrapping_add(1)
}

/// Wraps a time coordinate into `[0, time_slices)` without an integer division.
///
/// The circular time buffer is tiny (`depth + 1` slices) yet the seed code paid a
/// `rem_euclid` — a hardware divide plus a sign fix-up — on **every** grid access.  Here
/// the modulo is computed by Lemire's fastmod: multiply by a precomputed reciprocal and
/// take the high half, which is exact for any non-negative operand below 2³².  Negative
/// and astronomically large `t` (possible only through direct API calls, never from the
/// engines' monotone time loops) take the cold `rem_euclid` path; the range check is
/// perfectly predicted in the hot loops.
#[inline]
fn wrap_time(t: i64, time_slices: usize, magic: u64) -> usize {
    let n = time_slices as i64;
    // Bias keeps small negative t (e.g. the depth-2 stencils' t - 1 reads, which never
    // go below t0 - depth) on the fast path while leaving virtually the whole 2³²
    // window for positive t.  Wrapping add: a sum that overflows i64 can only land far
    // outside the fast-path window below, so it falls through to the exact cold path.
    let biased = t.wrapping_add(n << 8);
    if (0..1i64 << 32).contains(&biased) {
        let low = magic.wrapping_mul(biased as u64);
        ((low as u128 * time_slices as u128) >> 64) as usize
    } else {
        t.rem_euclid(n) as usize
    }
}

/// A dense, row-major, d-dimensional spatial grid with `depth + 1` time slices.
///
/// Coordinates are `i64`; the last spatial dimension is the unit-stride dimension.
/// Reads through [`PochoirArray::get`] outside the spatial domain are resolved by the
/// array's [`Boundary`]; writes must be in-domain.
pub struct PochoirArray<T, const D: usize> {
    sizes: [usize; D],
    strides: [usize; D],
    slice_len: usize,
    time_slices: usize,
    time_magic: u64,
    data: AlignedVec<T>,
    boundary: Boundary<T, D>,
}

impl<T: Copy + Default, const D: usize> PochoirArray<T, D> {
    /// Creates an array for a depth-1 stencil (two time slices), filled with `T::default()`.
    pub fn new(sizes: [usize; D]) -> Self {
        Self::with_depth(sizes, 1)
    }

    /// Creates an array with `depth + 1` time slices, filled with `T::default()`.
    pub fn with_depth(sizes: [usize; D], depth: usize) -> Self {
        Self::with_layout(sizes, depth, T::default())
    }
}

impl<T: Copy, const D: usize> PochoirArray<T, D> {
    /// Creates an array with `depth + 1` time slices, filled with `fill` — the
    /// `Default`-free constructor behind [`PochoirArray::with_depth`] and the shard
    /// layer's tile arrays (whose fill is an arbitrary element of the parent array,
    /// overwritten before any cell is read).
    pub(crate) fn with_layout(sizes: [usize; D], depth: usize, fill: T) -> Self {
        assert!(
            D > 0,
            "PochoirArray requires at least one spatial dimension"
        );
        assert!(
            depth >= 1,
            "stencil depth must be at least 1 (a depth-0 array would alias the read and \
             write time slices)"
        );
        assert!(
            sizes.iter().all(|&s| s > 0),
            "every spatial extent must be positive"
        );
        // The unit-stride (last) dimension's extent is rounded up so every row starts
        // on a GRID_ALIGN boundary of the 64-byte-aligned allocation — the storage
        // half of the explicit-SIMD row path.  Element sizes that don't divide 64
        // (e.g. LBM's [f64; 7]) keep a dense layout (pad factor 1).
        let pad = row_pad_elems::<T>();
        let mut strides = [0usize; D];
        let mut acc = 1usize;
        for d in (0..D).rev() {
            strides[d] = acc;
            let extent = if d == D - 1 {
                sizes[d]
                    .div_ceil(pad)
                    .checked_mul(pad)
                    .expect("grid too large: stride overflow")
            } else {
                sizes[d]
            };
            acc = acc
                .checked_mul(extent)
                .expect("grid too large: stride overflow");
        }
        let slice_len = acc;
        let time_slices = depth + 1;
        let total = slice_len
            .checked_mul(time_slices)
            .expect("grid too large: total size overflow");
        PochoirArray {
            sizes,
            strides,
            slice_len,
            time_slices,
            time_magic: time_magic(time_slices),
            data: AlignedVec::filled(total, fill),
            boundary: Boundary::Constant(fill),
        }
    }

    /// The spatial extent along `dim`.
    pub fn size(&self, dim: usize) -> usize {
        self.sizes[dim]
    }

    /// All spatial extents.
    pub fn sizes(&self) -> [usize; D] {
        self.sizes
    }

    /// Spatial extents as `i64` (the coordinate type used by kernels).
    pub fn sizes_i64(&self) -> [i64; D] {
        let mut out = [0i64; D];
        for (o, &size) in out.iter_mut().zip(self.sizes.iter()) {
            *o = size as i64;
        }
        out
    }

    /// Number of storage elements in one time slice.  At least the product of the
    /// spatial extents — larger when the unit-stride dimension is padded for
    /// row alignment (see [`GRID_ALIGN`]); [`PochoirArray::snapshot`] skips the
    /// padding.
    pub fn slice_len(&self) -> usize {
        self.slice_len
    }

    /// Number of time slices kept (stencil depth + 1).
    pub fn time_slices(&self) -> usize {
        self.time_slices
    }

    /// Row-major strides of the spatial dimensions.  The stride of dimension
    /// `D - 2` (the row stride) reflects the padded last-dimension extent, so it
    /// can exceed `sizes[D - 1]`.
    pub fn strides(&self) -> [usize; D] {
        self.strides
    }

    /// Registers the boundary function of this array (`Register_Boundary` in the paper).
    pub fn register_boundary(&mut self, boundary: Boundary<T, D>) {
        self.boundary = boundary;
    }

    /// The currently registered boundary function.
    pub fn boundary(&self) -> &Boundary<T, D> {
        &self.boundary
    }

    /// True if `x` lies inside the spatial domain.
    pub fn in_domain(&self, x: [i64; D]) -> bool {
        (0..D).all(|d| x[d] >= 0 && x[d] < self.sizes[d] as i64)
    }

    #[inline]
    fn slice_index(&self, t: i64) -> usize {
        wrap_time(t, self.time_slices, self.time_magic)
    }

    #[inline]
    fn spatial_offset(&self, x: [i64; D]) -> usize {
        let mut off = 0usize;
        for (d, (&c, &stride)) in x.iter().zip(self.strides.iter()).enumerate() {
            debug_assert!(
                c >= 0 && (c as usize) < self.sizes[d],
                "coordinate {c} out of range on axis {d} (size {})",
                self.sizes[d]
            );
            off += (c as usize) * stride;
        }
        off
    }

    /// Linear offset of `(t, x)` within the backing storage.
    pub fn offset(&self, t: i64, x: [i64; D]) -> usize {
        self.slice_index(t) * self.slice_len + self.spatial_offset(x)
    }

    /// Storage elements spanned by one outermost-axis row of a time slice, padding
    /// included (one element in 1D, where the outermost axis *is* the unit-stride
    /// axis).  Arrays sharing the inner extents (and `T`) have identical slab
    /// layouts, which is what makes the shard layer's seam copies plain `memcpy`s.
    pub(crate) fn slab_elems(&self) -> usize {
        if D == 1 {
            1
        } else {
            self.strides[0]
        }
    }

    /// The backing storage of outermost-axis row `row` of time slice `t`.
    pub(crate) fn slab(&self, t: i64, row: i64) -> &[T] {
        debug_assert!(row >= 0 && (row as usize) < self.sizes[0]);
        let len = self.slab_elems();
        let start = self.slice_index(t) * self.slice_len + row as usize * len;
        &self.data[start..start + len]
    }

    /// Mutable view of the backing storage of outermost-axis row `row` of time
    /// slice `t`.
    pub(crate) fn slab_mut(&mut self, t: i64, row: i64) -> &mut [T] {
        debug_assert!(row >= 0 && (row as usize) < self.sizes[0]);
        let len = self.slab_elems();
        let start = self.slice_index(t) * self.slice_len + row as usize * len;
        &mut self.data[start..start + len]
    }

    /// Reads the value at `(t, x)`.  Out-of-domain coordinates are resolved through the
    /// registered boundary function, as in the paper's Phase-1 template library.
    pub fn get(&self, t: i64, x: [i64; D]) -> T {
        if self.in_domain(x) {
            self.data[self.offset(t, x)]
        } else {
            let read = |tt: i64, xx: [i64; D]| self.data[self.offset(tt, xx)];
            self.boundary.resolve(&read, self.sizes_i64(), t, x)
        }
    }

    /// Reads an in-domain value without boundary handling (bounds checked in debug builds).
    #[inline]
    pub fn get_interior(&self, t: i64, x: [i64; D]) -> T {
        self.data[self.offset(t, x)]
    }

    /// Writes the value at `(t, x)`.  Panics when `x` is outside the domain.
    pub fn set(&mut self, t: i64, x: [i64; D], value: T) {
        assert!(
            self.in_domain(x),
            "cannot write outside the computing domain: {x:?}"
        );
        let off = self.offset(t, x);
        self.data[off] = value;
    }

    /// Fills time slice `t` from a function of the spatial coordinates.
    pub fn fill_time_slice(&mut self, t: i64, mut f: impl FnMut([i64; D]) -> T) {
        let sizes = self.sizes_i64();
        let mut x = [0i64; D];
        loop {
            let off = self.offset(t, x);
            self.data[off] = f(x);
            // Odometer increment over the spatial coordinates, last dimension fastest.
            let mut d = D;
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                x[d] += 1;
                if x[d] < sizes[d] {
                    break;
                }
                x[d] = 0;
                if d == 0 {
                    return;
                }
            }
        }
    }

    /// Iterates over every spatial coordinate of the grid in row-major order.
    pub fn iter_space(&self) -> SpaceIter<D> {
        SpaceIter::new(self.sizes_i64())
    }

    /// Copies time slice `t` into a flat, densely packed `Vec` in row-major order
    /// (useful for comparing results between engines).  Alignment padding between
    /// rows is skipped, so the result always has `sizes.iter().product()` elements.
    pub fn snapshot(&self, t: i64) -> Vec<T> {
        let base = self.slice_index(t) * self.slice_len;
        let row_len = self.sizes[D - 1];
        let mut out = Vec::with_capacity(self.sizes.iter().product());
        let mut idx = [0usize; D]; // odometer over the outer (non-row) dimensions
        loop {
            let mut off = base;
            for (d, &i) in idx.iter().enumerate().take(D - 1) {
                off += i * self.strides[d];
            }
            out.extend_from_slice(&self.data[off..off + row_len]);
            let mut d = D - 1;
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < self.sizes[d] {
                    break;
                }
                idx[d] = 0;
                if d == 0 {
                    return out;
                }
            }
        }
    }

    /// Raw engine-facing handle.  Only the engines use this; user code goes through
    /// `get`/`set`.
    pub(crate) fn raw(&mut self) -> RawGrid<'_, T, D> {
        RawGrid {
            ptr: self.data.as_mut_ptr(),
            sizes: self.sizes_i64(),
            strides: self.strides,
            slice_len: self.slice_len,
            time_slices: self.time_slices,
            time_magic: self.time_magic,
            boundary: &self.boundary,
            _marker: PhantomData,
        }
    }
}

impl<T: Copy, const D: usize> Clone for PochoirArray<T, D> {
    fn clone(&self) -> Self {
        PochoirArray {
            sizes: self.sizes,
            strides: self.strides,
            slice_len: self.slice_len,
            time_slices: self.time_slices,
            time_magic: self.time_magic,
            data: self.data.clone(),
            boundary: self.boundary.clone(),
        }
    }
}

impl<T: Copy + std::fmt::Display, const D: usize> std::fmt::Display for PochoirArray<T, D> {
    /// Pretty-prints the *latest written* content of every time slice (mirrors the
    /// paper's overloaded `<<` operator).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for slice in 0..self.time_slices {
            writeln!(f, "-- time slice {slice} --")?;
            let mut it = SpaceIter::new(self.sizes_i64());
            let mut count = 0usize;
            while let Some(x) = it.next_point() {
                let off = slice * self.slice_len + self.spatial_offset(x);
                write!(f, "{} ", self.data[off])?;
                count += 1;
                if D >= 1 && count.is_multiple_of(self.sizes[D - 1]) {
                    writeln!(f)?;
                }
            }
        }
        Ok(())
    }
}

/// Row-major iterator over all coordinates of a box `[0, sizes)`.
#[derive(Debug, Clone)]
pub struct SpaceIter<const D: usize> {
    sizes: [i64; D],
    next: Option<[i64; D]>,
}

impl<const D: usize> SpaceIter<D> {
    /// Iterates `[0, sizes)` in row-major order.
    pub fn new(sizes: [i64; D]) -> Self {
        let start = if sizes.iter().all(|&s| s > 0) {
            Some([0i64; D])
        } else {
            None
        };
        SpaceIter { sizes, next: start }
    }

    /// Returns the next coordinate, or `None` when exhausted.
    pub fn next_point(&mut self) -> Option<[i64; D]> {
        let current = self.next?;
        // Advance the odometer.
        let mut x = current;
        let mut d = D;
        loop {
            if d == 0 {
                self.next = None;
                break;
            }
            d -= 1;
            x[d] += 1;
            if x[d] < self.sizes[d] {
                self.next = Some(x);
                break;
            }
            x[d] = 0;
            if d == 0 {
                self.next = None;
                break;
            }
        }
        Some(current)
    }
}

impl<const D: usize> Iterator for SpaceIter<D> {
    type Item = [i64; D];

    fn next(&mut self) -> Option<Self::Item> {
        self.next_point()
    }
}

/// An engine-facing raw handle to a Pochoir array.
///
/// The pointer allows concurrent writes from multiple worker threads.  Safety rests on
/// the trapezoidal decomposition's guarantee that concurrently processed subzoids touch
/// disjoint space-time points (Lemma 1 of the paper); the `verify` test engine checks the
/// write-once property explicitly.
pub struct RawGrid<'a, T, const D: usize> {
    ptr: *mut T,
    sizes: [i64; D],
    strides: [usize; D],
    slice_len: usize,
    time_slices: usize,
    time_magic: u64,
    boundary: &'a Boundary<T, D>,
    _marker: PhantomData<&'a mut T>,
}

impl<'a, T, const D: usize> Clone for RawGrid<'a, T, D> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, T, const D: usize> Copy for RawGrid<'a, T, D> {}

// Safety: see the type-level comment; concurrent access is coordinated by the engines.
unsafe impl<'a, T: Send + Sync, const D: usize> Send for RawGrid<'a, T, D> {}
unsafe impl<'a, T: Send + Sync, const D: usize> Sync for RawGrid<'a, T, D> {}

impl<'a, T: Copy, const D: usize> RawGrid<'a, T, D> {
    /// Spatial extents.
    #[inline]
    pub fn sizes(&self) -> [i64; D] {
        self.sizes
    }

    /// The boundary function registered on the underlying array.
    #[inline]
    pub fn boundary(&self) -> &'a Boundary<T, D> {
        self.boundary
    }

    /// Number of time slices.
    #[inline]
    pub fn time_slices(&self) -> usize {
        self.time_slices
    }

    /// Number of points per time slice.
    #[inline]
    pub fn slice_len(&self) -> usize {
        self.slice_len
    }

    /// Size in bytes of one grid element (used by the cache tracer).
    #[inline]
    pub fn element_bytes(&self) -> usize {
        std::mem::size_of::<T>()
    }

    /// Linear element offset of `(t, x)`; `x` must be in-domain.
    #[inline]
    pub fn offset(&self, t: i64, x: [i64; D]) -> usize {
        let slice = wrap_time(t, self.time_slices, self.time_magic);
        let mut off = slice * self.slice_len;
        for (d, (&c, &stride)) in x.iter().zip(self.strides.iter()).enumerate() {
            debug_assert!(
                c >= 0 && c < self.sizes[d],
                "raw access out of range: axis {d}, coordinate {c}, size {}",
                self.sizes[d]
            );
            off += (c as usize) * stride;
        }
        off
    }

    /// True if `x` lies inside the spatial domain.
    #[inline]
    pub fn in_domain(&self, x: [i64; D]) -> bool {
        (0..D).all(|d| x[d] >= 0 && x[d] < self.sizes[d])
    }

    /// Unchecked read of an in-domain point.
    ///
    /// # Safety-related behaviour
    ///
    /// Debug builds assert the coordinate is in-domain; release builds rely on the
    /// decomposition guaranteeing it.
    #[inline]
    pub fn read(&self, t: i64, x: [i64; D]) -> T {
        let off = self.offset(t, x);
        unsafe { *self.ptr.add(off) }
    }

    /// Unchecked write of an in-domain point.
    #[inline]
    pub fn write(&self, t: i64, x: [i64; D], value: T) {
        let off = self.offset(t, x);
        unsafe {
            *self.ptr.add(off) = value;
        }
    }

    /// Read with boundary resolution: out-of-domain coordinates go through the boundary
    /// function, exactly like `PochoirArray::get`.
    pub fn read_with_boundary(&self, t: i64, x: [i64; D]) -> T {
        if self.in_domain(x) {
            self.read(t, x)
        } else {
            let read = |tt: i64, xx: [i64; D]| self.read(tt, xx);
            self.boundary.resolve(&read, self.sizes, t, x)
        }
    }

    #[inline]
    fn debug_check_row(&self, x: [i64; D], len: usize) {
        debug_assert!(
            x[D - 1] >= 0 && x[D - 1] + len as i64 <= self.sizes[D - 1],
            "row [{}, {}) out of range on the unit-stride axis (size {})",
            x[D - 1],
            x[D - 1] + len as i64,
            self.sizes[D - 1]
        );
        for (d, &c) in x.iter().enumerate().take(D - 1) {
            debug_assert!(
                c >= 0 && c < self.sizes[d],
                "row access out of range: axis {d}, coordinate {c}, size {}",
                self.sizes[d]
            );
        }
    }

    /// Read-only view of the `len` elements starting at `(t, x)` along the unit-stride
    /// (last) dimension.
    ///
    /// This is the storage-level half of the paper's `--split-pointer` indexing style:
    /// the time-slice base and the outer-dimension offset are resolved **once**, and the
    /// whole row is then walked at unit stride with no further address arithmetic.
    ///
    /// # Safety
    ///
    /// The row must be in-domain (`x` on every axis, `x[D-1] + len` within the last
    /// extent — debug builds assert this), and no element it covers may be written
    /// through this or any other handle while the returned slice is live.  The engines'
    /// base cases satisfy this: kernels read rows of time slices `t`, `t − 1`, … and
    /// write only slice `t + 1`, which occupies distinct storage.
    #[inline]
    pub unsafe fn row(&self, t: i64, x: [i64; D], len: usize) -> &'a [T] {
        self.debug_check_row(x, len);
        let off = self.offset(t, x);
        unsafe { std::slice::from_raw_parts(self.ptr.add(off), len) }
    }

    /// Unit-stride write cursor over the `len` elements starting at `(t, x)`.
    ///
    /// The same one-time address resolution as [`RawGrid::row`], for the output row.  A
    /// cursor rather than a `&mut [T]` so the aliasing story stays the one documented on
    /// [`RawGrid`]: concurrent subzoids touch disjoint points, which a long-lived unique
    /// reference could not express.
    ///
    /// # Safety
    ///
    /// The row must be in-domain (debug-asserted), and the elements it covers must not
    /// overlap any live slice obtained from [`RawGrid::row`] (see there).
    #[inline]
    pub unsafe fn row_out(&self, t: i64, x: [i64; D], len: usize) -> RowWriter<'a, T> {
        self.debug_check_row(x, len);
        let off = self.offset(t, x);
        RowWriter {
            ptr: unsafe { self.ptr.add(off) },
            len,
            _marker: PhantomData,
        }
    }
}

/// A cheap unit-stride write cursor over one grid row, produced by
/// [`RawGrid::row_out`].
///
/// Writes go straight through the precomputed base pointer; index `i` addresses the
/// `i`-th element of the row.
pub struct RowWriter<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut T>,
}

impl<'a, T: Copy> RowWriter<'a, T> {
    /// Number of elements in the row.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the row holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` at row-local index `i`.
    #[inline]
    pub fn set(&mut self, i: usize, value: T) {
        debug_assert!(
            i < self.len,
            "row write {i} out of range (len {})",
            self.len
        );
        unsafe {
            *self.ptr.add(i) = value;
        }
    }

    /// Raw base pointer of the row, for explicit-SIMD kernel bodies that store
    /// whole vectors at once.
    ///
    /// Stores through the pointer must stay within the row's `len` elements and
    /// observe the same aliasing contract as [`RowWriter::set`].
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::AxisRule;

    #[test]
    fn strides_are_row_major() {
        // f64 rows pad to 8 elements (64 bytes): the last extent 6 rounds up to 8.
        let a: PochoirArray<f64, 3> = PochoirArray::new([4, 5, 6]);
        assert_eq!(a.strides(), [40, 8, 1]);
        assert_eq!(a.slice_len(), 160);
        assert_eq!(a.time_slices(), 2);
    }

    #[test]
    fn rows_are_cache_line_aligned() {
        let a: PochoirArray<f64, 2> = PochoirArray::new([3, 5]);
        assert_eq!(a.strides(), [8, 1]);
        assert_eq!(a.slice_len(), 24);
        // Every row start — across both time slices — is GRID_ALIGN-aligned.
        for t in 0..2i64 {
            for x0 in 0..3i64 {
                let addr = &a.data[a.offset(t, [x0, 0])] as *const f64 as usize;
                assert!(addr.is_multiple_of(GRID_ALIGN), "t={t} x0={x0}");
            }
        }
    }

    #[test]
    fn elements_not_dividing_the_cache_line_stay_dense() {
        // LBM-style 56-byte cells: 64 % 56 != 0, so rows are not padded.
        let a: PochoirArray<[f64; 7], 2> = PochoirArray::new([3, 5]);
        assert_eq!(a.strides(), [5, 1]);
        assert_eq!(a.slice_len(), 15);
    }

    #[test]
    fn snapshot_skips_row_padding() {
        let mut a: PochoirArray<f64, 2> = PochoirArray::new([3, 5]);
        a.fill_time_slice(0, |x| (x[0] * 10 + x[1]) as f64);
        let snap = a.snapshot(0);
        assert_eq!(snap.len(), 15);
        for x0 in 0..3 {
            for x1 in 0..5 {
                assert_eq!(snap[x0 * 5 + x1], (x0 * 10 + x1) as f64);
            }
        }
    }

    #[test]
    fn aligned_vec_clones_and_rounds_trip() {
        let mut v = AlignedVec::filled(10usize, 7u32);
        v[3] = 42;
        let c = v.clone();
        assert_eq!(&c[..], &[7, 7, 7, 42, 7, 7, 7, 7, 7, 7]);
        assert!((c.as_ptr() as usize).is_multiple_of(GRID_ALIGN));
        let empty: AlignedVec<u32> = AlignedVec::filled(0, 0);
        assert!(empty.is_empty());
        let _ = empty.clone();
    }

    #[test]
    fn get_set_round_trip() {
        let mut a: PochoirArray<f64, 2> = PochoirArray::new([3, 4]);
        a.set(0, [1, 2], 42.0);
        assert_eq!(a.get(0, [1, 2]), 42.0);
        assert_eq!(a.get(0, [0, 0]), 0.0);
    }

    #[test]
    fn time_slices_wrap_modulo_depth_plus_one() {
        let mut a: PochoirArray<f64, 1> = PochoirArray::with_depth([4], 1);
        a.set(0, [1], 1.0);
        a.set(1, [1], 2.0);
        // Time 2 aliases slice 0.
        assert_eq!(a.get(2, [1]), 1.0);
        a.set(2, [1], 3.0);
        assert_eq!(a.get(0, [1]), 3.0);
        // Depth-2 arrays have three slices.
        let b: PochoirArray<f64, 1> = PochoirArray::with_depth([4], 2);
        assert_eq!(b.time_slices(), 3);
    }

    #[test]
    fn out_of_domain_reads_use_boundary() {
        let mut a: PochoirArray<f64, 2> = PochoirArray::new([3, 3]);
        a.register_boundary(Boundary::Constant(-5.0));
        assert_eq!(a.get(0, [-1, 0]), -5.0);
        assert_eq!(a.get(0, [0, 3]), -5.0);
        a.register_boundary(Boundary::Periodic);
        a.set(0, [2, 1], 9.0);
        assert_eq!(a.get(0, [-1, 1]), 9.0);
    }

    #[test]
    #[should_panic(expected = "depth must be at least 1")]
    fn zero_depth_is_rejected() {
        let _: PochoirArray<f64, 2> = PochoirArray::with_depth([4, 4], 0);
    }

    #[test]
    #[should_panic(expected = "outside the computing domain")]
    fn out_of_domain_write_panics() {
        let mut a: PochoirArray<f64, 2> = PochoirArray::new([3, 3]);
        a.set(0, [3, 0], 1.0);
    }

    #[test]
    fn fill_time_slice_visits_every_point() {
        let mut a: PochoirArray<f64, 2> = PochoirArray::new([3, 4]);
        a.fill_time_slice(0, |x| (x[0] * 10 + x[1]) as f64);
        for x0 in 0..3 {
            for x1 in 0..4 {
                assert_eq!(a.get(0, [x0, x1]), (x0 * 10 + x1) as f64);
            }
        }
    }

    #[test]
    fn space_iter_counts_and_order() {
        let pts: Vec<[i64; 2]> = SpaceIter::new([2, 3]).collect();
        assert_eq!(pts, vec![[0, 0], [0, 1], [0, 2], [1, 0], [1, 1], [1, 2]]);
        let pts3: Vec<[i64; 3]> = SpaceIter::new([2, 2, 2]).collect();
        assert_eq!(pts3.len(), 8);
    }

    #[test]
    fn snapshot_reflects_slice_content() {
        let mut a: PochoirArray<i64, 1> = PochoirArray::new([4]);
        a.fill_time_slice(1, |x| x[0] * 2);
        assert_eq!(a.snapshot(1), vec![0, 2, 4, 6]);
        assert_eq!(a.snapshot(0), vec![0, 0, 0, 0]);
    }

    #[test]
    fn raw_grid_reads_and_writes() {
        let mut a: PochoirArray<f64, 2> = PochoirArray::new([4, 4]);
        a.register_boundary(Boundary::Mixed([AxisRule::Clamp, AxisRule::Periodic]));
        {
            let raw = a.raw();
            raw.write(1, [2, 3], 8.0);
            assert_eq!(raw.read(1, [2, 3]), 8.0);
            // Clamped on axis 0, wrapped on axis 1.
            raw.write(0, [0, 0], 3.0);
            assert_eq!(raw.read_with_boundary(0, [-1, 4]), 3.0);
        }
        assert_eq!(a.get(1, [2, 3]), 8.0);
    }

    #[test]
    fn display_prints_without_panicking() {
        let mut a: PochoirArray<f64, 2> = PochoirArray::new([2, 2]);
        a.set(0, [0, 0], 1.5);
        let s = format!("{a}");
        assert!(s.contains("time slice 0"));
        assert!(s.contains("1.5"));
    }

    #[test]
    fn one_dimensional_grid_works() {
        let mut a: PochoirArray<u32, 1> = PochoirArray::new([10]);
        a.fill_time_slice(0, |x| x[0] as u32);
        assert_eq!(a.get(0, [9]), 9);
        assert_eq!(a.size(0), 10);
    }

    #[test]
    fn wrap_time_matches_rem_euclid_everywhere() {
        for n in (1..=9usize).chain([16, 17, 100]) {
            let magic = time_magic(n);
            for t in -1000i64..1000 {
                assert_eq!(
                    wrap_time(t, n, magic),
                    t.rem_euclid(n as i64) as usize,
                    "t={t} n={n}"
                );
            }
            // Far outside the fast-path bias window (cold fallback).
            for t in [i64::MIN, i64::MIN / 2, -(1i64 << 40), 1i64 << 40, i64::MAX] {
                assert_eq!(wrap_time(t, n, magic), t.rem_euclid(n as i64) as usize);
            }
        }
    }

    #[test]
    fn rows_expose_unit_stride_storage() {
        let mut a: PochoirArray<f64, 2> = PochoirArray::new([3, 5]);
        a.fill_time_slice(0, |x| (x[0] * 10 + x[1]) as f64);
        {
            let raw = a.raw();
            // Safety: in-domain rows; the read row (slice 0) and the written row
            // (slice 1) occupy distinct storage.
            let row = unsafe { raw.row(0, [1, 1], 3) };
            assert_eq!(row, &[11.0, 12.0, 13.0]);
            let mut out = unsafe { raw.row_out(1, [2, 0], 5) };
            assert_eq!(out.len(), 5);
            assert!(!out.is_empty());
            for i in 0..5 {
                out.set(i, i as f64 * 2.0);
            }
        }
        assert_eq!(a.snapshot(1)[10..15], [0.0, 2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn four_dimensional_grid_works() {
        let mut a: PochoirArray<f32, 4> = PochoirArray::new([3, 3, 3, 3]);
        a.set(0, [1, 2, 0, 1], 4.5);
        assert_eq!(a.get(0, [1, 2, 0, 1]), 4.5);
        // f32 rows pad to 16 elements: the last extent 3 rounds up to 16.
        assert_eq!(a.strides(), [144, 48, 16, 1]);
    }
}
