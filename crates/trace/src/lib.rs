//! # pochoir-trace
//!
//! The traffic-trace layer of the serving benchmark harness: a versioned,
//! human-readable trace format for multi-tenant stencil traffic, seeded synthetic
//! generators for adversarial workload shapes, and the minimal JSON layer shared
//! with the `bench_check` CI gate.
//!
//! The Pochoir paper's amortization claim — compile a trapezoidal schedule once,
//! replay it across many invocations — is exercised in this workspace by a
//! multi-tenant serving layer whose scheduler claims (EDF ordering, weighted-stride
//! fairness, shed/quarantine behaviour, shard-group pipelining) need *reproducible
//! traffic* to be testable.  A [`Trace`] is that reproducible
//! artifact: a named, seeded stream of
//! `(tenant, app, geometry, window, weight, deadline, arrival_tick)` records that
//! `traffic_replay_json` (in `pochoir-bench`) drives through `StencilServer` under
//! pipelined / barrier / sequential disciplines.
//!
//! * [`format`](mod@format) — the versioned record/stream types, `emit`/`parse` with a
//!   property-pinned round trip, and validation against the closed app vocabulary.
//! * [`gen`] — integer-only seeded generators: memoryless (Poisson-analogue)
//!   arrivals, heavy-tail tenant skew, diurnal bursts, session-registry geometry
//!   churn, and sharded giant-grid traffic.
//! * [`corpus`] — the committed `traces/` corpus definition (pinned seeds).
//! * [`json`] — the dependency-free JSON value this workspace's harness layers
//!   share (the workspace builds offline, without serde).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod corpus;
pub mod format;
pub mod gen;
pub mod json;

pub use format::{
    Trace, TraceApp, TraceError, TraceRecord, TRACE_APPS, TRACE_FORMAT, TRACE_VERSION,
};
pub use gen::{Rng, WorkShape};
pub use json::{Json, JsonError};
