//! A minimal JSON value: parser, printer, and path accessors.
//!
//! The workspace builds offline with no serde, yet two harness layers need real JSON:
//! the [trace format](crate::format) must round-trip through a human-readable
//! representation, and the `bench_check` CI gate must *read back* the `BENCH_*.json`
//! reports the bench bins emit.  This module is that shared layer — a deliberately
//! small recursive-descent parser over the JSON the harness itself writes (objects,
//! arrays, strings with standard escapes, integer and floating literals, booleans,
//! null), with object key order preserved so `parse ∘ emit` is the identity on
//! emitted documents.

use std::fmt;

/// A parsed JSON document.
///
/// Integers are kept exact (as [`Json::Int`], or [`Json::UInt`] for the band
/// above `i64::MAX`) when the literal has no fraction or exponent; everything
/// else numeric becomes [`Json::Num`].  Object members keep their source order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no `.`/`e`, within `i64`).
    Int(i64),
    /// An unsigned integer literal above `i64::MAX` (still exact; full `u64`
    /// values — trace seeds, ticks — must survive the round trip losslessly).
    UInt(u64),
    /// Any other numeric literal.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (alias for the module-level [`parse`]).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        parse(input)
    }

    /// Member `key` of an object, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact integer ([`Json::Int`] only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative exact integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a float (accepts integer literals too).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object members in source order.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.reason
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character '{}'", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut out = 0u16;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => b - b'0',
                Some(b @ b'a'..=b'f') => b - b'a' + 10,
                Some(b @ b'A'..=b'F') => b - b'A' + 10,
                _ => return Err(self.err("expected four hex digits after \\u")),
            };
            out = out << 4 | digit as u16;
            self.pos += 1;
        }
        Ok(out)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000
                                    + ((unit as u32 - 0xD800) << 10)
                                    + (low as u32 - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(unit as u32)
                                    .ok_or_else(|| self.err("lone low surrogate"))?
                            };
                            out.push(ch);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().expect("peeked a byte");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if !fractional {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
            // i64 overflowed; an unsigned literal may still be exact as u64
            // (trace seeds use the full range).
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number literal '{text}'")))
    }
}

/// Escapes `s` as a JSON string body (no surrounding quotes).
fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl fmt::Display for Json {
    /// Compact single-line rendering; `parse` of the output reproduces the value.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::UInt(v) => write!(f, "{v}"),
            Json::Num(v) => {
                if v.is_finite() {
                    // Shortest representation that round-trips through f64.
                    write!(f, "{v:?}")
                } else {
                    // JSON has no Inf/NaN; emit null like serde_json does.
                    f.write_str("null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                write!(f, "\"{buf}\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    let mut buf = String::with_capacity(k.len());
                    escape_into(&mut buf, k);
                    write!(f, "\"{buf}\": {v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(parse("2e3").unwrap(), Json::Num(2000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures_preserving_order() {
        let doc = parse(r#"{"b": [1, 2, {"c": null}], "a": "x"}"#).unwrap();
        let members = doc.as_obj().unwrap();
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(doc.get("a").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("b").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Str("line\nquote\"tab\tback\\slash\u{1}".into());
        let rendered = original.to_string();
        assert_eq!(parse(&rendered).unwrap(), original);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""é""#).unwrap(), Json::Str("é".into()));
        // Surrogate pair: U+1F600.
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "01x", "\"", "1 2"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn display_round_trips() {
        let doc = parse(r#"{"a": [1, -2.5, true, null], "b": {"c": "d"}}"#).unwrap();
        assert_eq!(parse(&doc.to_string()).unwrap(), doc);
    }

    #[test]
    fn big_integers_stay_exact() {
        let v = i64::MAX;
        assert_eq!(parse(&v.to_string()).unwrap(), Json::Int(v));
        // Above i64: still exact, as the unsigned variant — and re-emits the
        // same decimal digits (full-range u64 trace seeds depend on this).
        let u = u64::MAX;
        assert_eq!(parse(&u.to_string()).unwrap(), Json::UInt(u));
        assert_eq!(Json::UInt(u).to_string(), u.to_string());
        assert_eq!(parse(&u.to_string()).unwrap().as_u64(), Some(u));
    }
}
