//! The committed trace corpus: five pinned-seed scenarios, one per adversarial
//! shape, sized so a full three-discipline replay stays CI-smoke cheap.
//!
//! The corpus is *defined here* and *materialized under `traces/`* by the
//! `trace_corpus` bin; `crates/bench/tests/corpus.rs` pins the committed files
//! byte-identical to this definition, so a generator change that would silently
//! invalidate the committed baselines fails the suite instead.

use crate::format::Trace;
use crate::gen::{self, DayCycle, GiantCell, WorkShape};

/// Giant-grid cells used by the `giant` scenario: large enough that
/// `should_compile` rejects the whole grid at the serving chunk height (forcing the
/// `submit_sharded` route), small enough to replay in CI.
pub const GIANT_CELLS: u64 = 600_000;

/// Tile count the replay harness pins for sharded giants (auto mode would size the
/// group off the host's worker count, breaking cross-machine determinism).
pub const GIANT_TILES: u32 = 4;

/// The standard corpus, in replay order.  File stems under `traces/` equal the
/// trace names.
pub fn standard() -> Vec<Trace> {
    let heat = WorkShape::heat2d(48, 8);
    let life = WorkShape::life(48, 6);
    let wave = WorkShape::wave3d(16, 4);
    let mut corpus = vec![
        // Baseline memoryless traffic over one warm session.
        gen::poisson(0x5EED_0001, &heat, 8, 40, 3, 4),
        // Whales vs. deadline-holding mice on one geometry.
        gen::heavy_tail(0x5EED_0002, &heat, 16, 48, 4),
        // Bursty arrivals piling into few epochs.
        gen::diurnal(
            0x5EED_0003,
            &life,
            8,
            48,
            DayCycle {
                day_ticks: 96,
                peak_gap: 1,
                trough_gap: 8,
            },
            3,
        ),
        // Registry thrash: ~24 distinct geometries across two apps.
        gen::geometry_churn(0x5EED_0004, 8, 48, 24, 24, 4, 4),
        // Sharded giants interleaved with background 2D tenants.
        gen::giant_grid(
            0x5EED_0005,
            &heat,
            6,
            18,
            GiantCell {
                every: 6,
                cells: GIANT_CELLS,
                window: 8,
            },
            4,
        ),
    ];
    // A 3D scenario so the corpus exercises every served dimensionality; the
    // arrival law is the memoryless baseline, renamed to its own file stem.
    let mut waves = gen::poisson(0x5EED_0006, &wave, 6, 24, 4, 4);
    waves.name = "waves".into();
    corpus.push(waves);
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceApp;

    #[test]
    fn corpus_is_deterministic_and_distinctly_named() {
        let a = standard();
        let b = standard();
        assert_eq!(a, b);
        let mut names: Vec<&str> = a.iter().map(|t| t.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), a.len());
    }

    #[test]
    fn corpus_covers_every_app() {
        let corpus = standard();
        for app in crate::format::TRACE_APPS {
            assert!(
                corpus
                    .iter()
                    .any(|t| t.records.iter().any(|r| r.app == app)),
                "corpus never submits {app}"
            );
        }
    }

    #[test]
    fn giants_fail_compile_heuristics_by_construction() {
        // should_compile's leaf estimate for an uncoarsened 1D grid at chunk height
        // c is c × n; the giant must exceed the ~2M-leaf bound so the sharded
        // route (not a warm compile) is what the trace exercises.
        let corpus = standard();
        let giant = corpus.iter().find(|t| t.name == "giant").unwrap();
        for r in giant
            .records
            .iter()
            .filter(|r| r.app == TraceApp::HeatGiant1d)
        {
            assert!(r.geometry[0] * giant.chunk as u64 > 1 << 21);
        }
    }
}
