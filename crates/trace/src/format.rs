//! The versioned traffic-trace format.
//!
//! A trace is a named, seeded stream of submission records — one record per tenant
//! request against a serving preset — in the shape the replay harness drives through
//! `StencilServer`: `(tenant, app, geometry, window, weight, deadline, arrival_tick)`.
//! The on-disk representation is human-readable JSON with one record per line (see
//! [`Trace::emit`]); [`Trace::parse`] validates the format tag, the version, and
//! every record's geometry against its app's dimensionality, so a corrupt or
//! future-version trace fails loudly instead of replaying garbage.
//!
//! `parse ∘ emit` is the identity (property-pinned in `tests/roundtrip.rs`), which is
//! what lets CI treat committed traces as reproducible artifacts: the corpus under
//! `traces/` can be regenerated bit-identically from `(generator, seed)`.

use crate::json::{self, Json};
use std::fmt;

/// The format tag every trace document carries.
pub const TRACE_FORMAT: &str = "pochoir-trace";

/// Current trace format version; [`Trace::parse`] rejects anything newer.
pub const TRACE_VERSION: u32 = 1;

/// The serving preset a record targets.
///
/// The vocabulary is closed on purpose: a trace names *workload shapes the harness
/// can actually serve*, and an unknown app is a parse error rather than a silently
/// dropped record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceApp {
    /// 2D heat (f64, periodic) via `heat::serve_2d`.
    Heat2d,
    /// Game of life (u8) via `life::serve`.
    Life,
    /// 3D wave (f64, two time slices) via `wave::serve`.
    Wave3d,
    /// A giant 1D heat grid submitted through `submit_sharded`
    /// (`heat::serve_giant_1d`): tile tenant groups with halo-exchange barriers.
    HeatGiant1d,
}

/// All apps, in the order used by generators and reports.
pub const TRACE_APPS: [TraceApp; 4] = [
    TraceApp::Heat2d,
    TraceApp::Life,
    TraceApp::Wave3d,
    TraceApp::HeatGiant1d,
];

impl TraceApp {
    /// The stable on-disk name.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceApp::Heat2d => "heat2d",
            TraceApp::Life => "life",
            TraceApp::Wave3d => "wave3d",
            TraceApp::HeatGiant1d => "heat_giant1d",
        }
    }

    /// Parses an on-disk name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "heat2d" => Some(TraceApp::Heat2d),
            "life" => Some(TraceApp::Life),
            "wave3d" => Some(TraceApp::Wave3d),
            "heat_giant1d" => Some(TraceApp::HeatGiant1d),
            _ => None,
        }
    }

    /// Spatial dimensionality of the app's geometry vector.
    pub fn dims(self) -> usize {
        match self {
            TraceApp::Heat2d | TraceApp::Life => 2,
            TraceApp::Wave3d => 3,
            TraceApp::HeatGiant1d => 1,
        }
    }
}

impl fmt::Display for TraceApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One tenant request: the tuple the replay harness turns into a
/// `submit_with`/`submit_sharded` call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Tenant identity; seeds the deterministic initial grid and groups requests in
    /// reports.  Tenants are stateless across records (each record gets a fresh
    /// grid), matching the serving layer's owned-array submissions.
    pub tenant: u32,
    /// Target serving preset.
    pub app: TraceApp,
    /// Spatial extents; length must equal `app.dims()`.
    pub geometry: Vec<u64>,
    /// Requested kernel-invocation steps: the submission runs `[0, window)`.
    pub window: i64,
    /// Weighted-stride share of dispatch slots (≥ 1).
    pub weight: u32,
    /// Optional logical deadline, in drain ticks of the record's server (see
    /// `SubmitOptions::deadline`).
    pub deadline: Option<u64>,
    /// Arrival time on the trace's logical clock; the replay harness groups
    /// arrivals into drain rounds of [`Trace::epoch`] ticks.
    pub arrival_tick: u64,
}

/// A named, seeded stream of [`TraceRecord`]s plus the replay knobs that are part of
/// the workload's identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Scenario name (also the corpus file stem).
    pub name: String,
    /// The generator seed this trace was built from (0 for hand-written traces);
    /// recorded so reports can state their provenance.
    pub seed: u64,
    /// Chunk height (drain window) of every server the replay builds; part of the
    /// session-registry key, so traces control registry pressure with it.
    pub chunk: i64,
    /// Arrival ticks per drain round during replay: all records arriving inside one
    /// epoch are submitted together, then every server with pending work drains.
    pub epoch: u64,
    /// The records, ordered by `arrival_tick` (ties keep source order).
    pub records: Vec<TraceRecord>,
}

/// Why a trace document was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceError {
    /// The document is not JSON.
    Json(json::JsonError),
    /// The document is JSON but not a trace (missing/ill-typed field).
    Schema(String),
    /// The format tag or version does not match this parser.
    Version(String),
    /// A record is internally inconsistent (geometry arity, zero window, …).
    Record {
        /// Index of the offending record in the `records` array.
        index: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Json(e) => write!(f, "trace is not valid JSON: {e}"),
            TraceError::Schema(msg) => write!(f, "trace schema error: {msg}"),
            TraceError::Version(msg) => write!(f, "trace version error: {msg}"),
            TraceError::Record { index, reason } => {
                write!(f, "trace record {index} invalid: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<json::JsonError> for TraceError {
    fn from(e: json::JsonError) -> Self {
        TraceError::Json(e)
    }
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, TraceError> {
    obj.get(key)
        .ok_or_else(|| TraceError::Schema(format!("missing field '{key}'")))
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, TraceError> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| TraceError::Schema(format!("field '{key}' must be a non-negative integer")))
}

fn i64_field(obj: &Json, key: &str) -> Result<i64, TraceError> {
    field(obj, key)?
        .as_i64()
        .ok_or_else(|| TraceError::Schema(format!("field '{key}' must be an integer")))
}

impl Trace {
    /// Renders the trace as pretty JSON: header fields one per line, then one record
    /// per line — diffable in review, greppable in CI logs.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"format\": {},\n",
            Json::Str(TRACE_FORMAT.into())
        ));
        out.push_str(&format!("  \"version\": {TRACE_VERSION},\n"));
        out.push_str(&format!("  \"name\": {},\n", Json::Str(self.name.clone())));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"chunk\": {},\n", self.chunk));
        out.push_str(&format!("  \"epoch\": {},\n", self.epoch));
        out.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let deadline = match r.deadline {
                Some(d) => d.to_string(),
                None => "null".to_string(),
            };
            let geometry: Vec<String> = r.geometry.iter().map(|g| g.to_string()).collect();
            out.push_str(&format!(
                "    {{\"tenant\": {}, \"app\": \"{}\", \"geometry\": [{}], \
                 \"window\": {}, \"weight\": {}, \"deadline\": {}, \"arrival_tick\": {}}}{}\n",
                r.tenant,
                r.app,
                geometry.join(", "),
                r.window,
                r.weight,
                deadline,
                r.arrival_tick,
                if i + 1 == self.records.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Parses and validates a trace document (see the module docs for the checks).
    pub fn parse(input: &str) -> Result<Self, TraceError> {
        let doc = json::parse(input)?;
        let format = field(&doc, "format")?
            .as_str()
            .ok_or_else(|| TraceError::Schema("field 'format' must be a string".into()))?;
        if format != TRACE_FORMAT {
            return Err(TraceError::Version(format!(
                "format tag '{format}' is not '{TRACE_FORMAT}'"
            )));
        }
        let version = u64_field(&doc, "version")?;
        if version != TRACE_VERSION as u64 {
            return Err(TraceError::Version(format!(
                "version {version} is not the supported version {TRACE_VERSION}"
            )));
        }
        let name = field(&doc, "name")?
            .as_str()
            .ok_or_else(|| TraceError::Schema("field 'name' must be a string".into()))?
            .to_string();
        let seed = u64_field(&doc, "seed")?;
        let chunk = i64_field(&doc, "chunk")?;
        if chunk <= 0 {
            return Err(TraceError::Schema("field 'chunk' must be positive".into()));
        }
        let epoch = u64_field(&doc, "epoch")?;
        if epoch == 0 {
            return Err(TraceError::Schema("field 'epoch' must be positive".into()));
        }
        let raw_records = field(&doc, "records")?
            .as_arr()
            .ok_or_else(|| TraceError::Schema("field 'records' must be an array".into()))?;
        let mut records = Vec::with_capacity(raw_records.len());
        for (index, raw) in raw_records.iter().enumerate() {
            records.push(Self::parse_record(index, raw)?);
        }
        Ok(Trace {
            name,
            seed,
            chunk,
            epoch,
            records,
        })
    }

    fn parse_record(index: usize, raw: &Json) -> Result<TraceRecord, TraceError> {
        let bad = |reason: String| TraceError::Record { index, reason };
        let app_name = field(raw, "app")?
            .as_str()
            .ok_or_else(|| bad("field 'app' must be a string".into()))?;
        let app =
            TraceApp::parse(app_name).ok_or_else(|| bad(format!("unknown app '{app_name}'")))?;
        let geometry_raw = field(raw, "geometry")?
            .as_arr()
            .ok_or_else(|| bad("field 'geometry' must be an array".into()))?;
        let mut geometry = Vec::with_capacity(geometry_raw.len());
        for g in geometry_raw {
            let extent = g
                .as_u64()
                .ok_or_else(|| bad("geometry extents must be non-negative integers".into()))?;
            if extent == 0 {
                return Err(bad("geometry extents must be positive".into()));
            }
            geometry.push(extent);
        }
        if geometry.len() != app.dims() {
            return Err(bad(format!(
                "app '{app}' needs {} extents, got {}",
                app.dims(),
                geometry.len()
            )));
        }
        let window = i64_field(raw, "window").map_err(|e| bad(e.to_string()))?;
        if window <= 0 {
            return Err(bad("field 'window' must be positive".into()));
        }
        let weight = u64_field(raw, "weight").map_err(|e| bad(e.to_string()))?;
        if weight == 0 || weight > u32::MAX as u64 {
            return Err(bad("field 'weight' must be in 1..=u32::MAX".into()));
        }
        let deadline = match field(raw, "deadline")? {
            Json::Null => None,
            v => Some(v.as_u64().ok_or_else(|| {
                bad("field 'deadline' must be null or a non-negative integer".into())
            })?),
        };
        let tenant = u64_field(raw, "tenant").map_err(|e| bad(e.to_string()))?;
        if tenant > u32::MAX as u64 {
            return Err(bad("field 'tenant' must fit u32".into()));
        }
        Ok(TraceRecord {
            tenant: tenant as u32,
            app,
            geometry,
            window,
            weight: weight as u32,
            deadline,
            arrival_tick: u64_field(raw, "arrival_tick").map_err(|e| bad(e.to_string()))?,
        })
    }

    /// Total grid-point updates the trace requests (Σ volume × window), the
    /// denominator of replay throughput.
    pub fn points(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.geometry.iter().map(|&g| g as f64).product::<f64>() * r.window as f64)
            .sum()
    }

    /// Distinct `(app, geometry, chunk)` server keys the trace touches — the number
    /// of sessions the replay will ask the registry for.
    pub fn distinct_servers(&self) -> usize {
        let mut keys: Vec<(TraceApp, &[u64])> = self
            .records
            .iter()
            .map(|r| (r.app, r.geometry.as_slice()))
            .collect();
        keys.sort();
        keys.dedup();
        keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            name: "sample".into(),
            seed: 7,
            chunk: 4,
            epoch: 16,
            records: vec![
                TraceRecord {
                    tenant: 0,
                    app: TraceApp::Heat2d,
                    geometry: vec![48, 48],
                    window: 8,
                    weight: 1,
                    deadline: None,
                    arrival_tick: 0,
                },
                TraceRecord {
                    tenant: 3,
                    app: TraceApp::Life,
                    geometry: vec![32, 32],
                    window: 4,
                    weight: 4,
                    deadline: Some(12),
                    arrival_tick: 17,
                },
            ],
        }
    }

    #[test]
    fn emit_parse_round_trip() {
        let t = sample();
        assert_eq!(Trace::parse(&t.emit()).unwrap(), t);
    }

    #[test]
    fn rejects_future_version() {
        let doc = sample().emit().replace("\"version\": 1", "\"version\": 2");
        assert!(matches!(Trace::parse(&doc), Err(TraceError::Version(_))));
    }

    #[test]
    fn rejects_wrong_format_tag() {
        let doc = sample().emit().replace(TRACE_FORMAT, "other-format");
        assert!(matches!(Trace::parse(&doc), Err(TraceError::Version(_))));
    }

    #[test]
    fn rejects_geometry_arity_mismatch() {
        let doc = sample().emit().replace("[48, 48]", "[48, 48, 48]");
        assert!(matches!(Trace::parse(&doc), Err(TraceError::Record { .. })));
    }

    #[test]
    fn rejects_unknown_app() {
        let doc = sample().emit().replace("heat2d", "heat9d");
        assert!(matches!(Trace::parse(&doc), Err(TraceError::Record { .. })));
    }

    #[test]
    fn points_and_servers() {
        let t = sample();
        assert_eq!(t.points(), (48.0 * 48.0 * 8.0) + (32.0 * 32.0 * 4.0));
        assert_eq!(t.distinct_servers(), 2);
    }
}
