//! Seeded synthetic traffic generators for adversarial serving shapes.
//!
//! Every generator is a pure function of its knobs: the only randomness source is a
//! splitmix64 stream seeded by the caller, and all arithmetic is integer-only (no
//! floating point, no transcendental functions), so the same seed produces the same
//! trace byte-for-byte on every host — the property the committed corpus and the CI
//! determinism tests pin.
//!
//! The shapes target specific scheduler claims:
//!
//! * [`poisson`] — memoryless arrivals (geometric inter-arrival gaps, the discrete
//!   Poisson-process analogue) across a uniform tenant population: the baseline
//!   steady-traffic scenario for EDF/stride dispatch.
//! * [`heavy_tail`] — a Zipf-ish tenant popularity skew with weights tied to tenant
//!   class: a handful of whales dominating the queue while many mice hold deadlines,
//!   the stride-fairness and starvation stressor.
//! * [`diurnal`] — a triangle-wave arrival rate (peak/trough "day cycle") producing
//!   bursts that pile submissions into a few epochs: the queue-depth and
//!   deadline-miss stressor.
//! * [`geometry_churn`] — every arrival draws from a pool of distinct geometries so
//!   almost no submission reuses a warm session: the `SessionRegistry`
//!   compile/evict stressor.
//! * [`giant_grid`] — background 2D traffic plus periodic giant 1D grids routed
//!   through `submit_sharded`: the shard-group barrier interleaving scenario.

use crate::format::{Trace, TraceApp, TraceRecord};

/// Deterministic splitmix64 stream (the same generator the vendored proptest uses).
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Geometric inter-arrival gap with mean `mean` ticks (≥ 1): the number of
    /// Bernoulli(1/mean) tick trials up to and including the first success.  This is
    /// the discrete memoryless distribution — the integer-only stand-in for the
    /// exponential gaps of a Poisson process.
    pub fn geometric_gap(&mut self, mean: u64) -> u64 {
        let mean = mean.max(1);
        let mut gap = 1;
        while self.below(mean) != 0 {
            gap += 1;
        }
        gap
    }
}

/// The workload shape shared by a generator's ordinary records: which preset, at
/// what geometry, stepped how far per submission.
#[derive(Clone, Debug)]
pub struct WorkShape {
    /// Target preset.
    pub app: TraceApp,
    /// Spatial extents (length must equal `app.dims()`).
    pub geometry: Vec<u64>,
    /// Steps per submission.
    pub window: i64,
}

impl WorkShape {
    /// A small 2D heat shape (the default background workload).
    pub fn heat2d(n: u64, window: i64) -> Self {
        WorkShape {
            app: TraceApp::Heat2d,
            geometry: vec![n, n],
            window,
        }
    }

    /// A small game-of-life shape.
    pub fn life(n: u64, window: i64) -> Self {
        WorkShape {
            app: TraceApp::Life,
            geometry: vec![n, n],
            window,
        }
    }

    /// A small 3D wave shape.
    pub fn wave3d(n: u64, window: i64) -> Self {
        WorkShape {
            app: TraceApp::Wave3d,
            geometry: vec![n, n, n],
            window,
        }
    }
}

/// Memoryless arrivals: `arrivals` records with geometric inter-arrival gaps of mean
/// `gap_mean` ticks, tenants drawn uniformly from `0..tenants`, weight 1, and a
/// generous deadline on every fourth record (windows × 4 drain ticks of slack).
pub fn poisson(
    seed: u64,
    shape: &WorkShape,
    tenants: u32,
    arrivals: usize,
    gap_mean: u64,
    chunk: i64,
) -> Trace {
    let mut rng = Rng::new(seed);
    let mut tick = 0u64;
    let mut records = Vec::with_capacity(arrivals);
    for i in 0..arrivals {
        tick += rng.geometric_gap(gap_mean);
        let windows = windows_of(shape.window, chunk);
        let deadline = (i % 4 == 0).then_some(windows * 4);
        records.push(TraceRecord {
            tenant: rng.below(tenants.max(1) as u64) as u32,
            app: shape.app,
            geometry: shape.geometry.clone(),
            window: shape.window,
            weight: 1,
            deadline,
            arrival_tick: tick,
        });
    }
    Trace {
        name: "poisson".into(),
        seed,
        chunk,
        epoch: gap_mean.max(1) * 8,
        records,
    }
}

/// Heavy-tail tenant skew: tenant `t` is drawn with weight `⌈tenants/(t+1)⌉`
/// (harmonic, Zipf-ish), whales (the top quarter of the popularity mass) submit at
/// weight 8, and the long tail holds tight deadlines at weight 1 — the scheduler
/// must keep serving mice on time while whales saturate the queue.
pub fn heavy_tail(
    seed: u64,
    shape: &WorkShape,
    tenants: u32,
    arrivals: usize,
    chunk: i64,
) -> Trace {
    let tenants = tenants.max(1);
    let mut rng = Rng::new(seed);
    // Harmonic popularity table: cumulative[t] = Σ_{i<=t} ceil(tenants / (i+1)).
    let mut cumulative = Vec::with_capacity(tenants as usize);
    let mut total = 0u64;
    for t in 0..tenants as u64 {
        total += (tenants as u64).div_ceil(t + 1);
        cumulative.push(total);
    }
    let mut tick = 0u64;
    let mut records = Vec::with_capacity(arrivals);
    for _ in 0..arrivals {
        tick += rng.geometric_gap(3);
        let draw = rng.below(total);
        let tenant = cumulative.partition_point(|&c| c <= draw) as u32;
        let whale = tenant < tenants.div_ceil(4);
        let windows = windows_of(shape.window, chunk);
        records.push(TraceRecord {
            tenant,
            app: shape.app,
            geometry: shape.geometry.clone(),
            window: shape.window,
            weight: if whale { 8 } else { 1 },
            // Mice hold tight (but meetable in isolation) deadlines; whales are
            // throughput tenants without any.
            deadline: (!whale).then_some(windows * 2),
            arrival_tick: tick,
        });
    }
    Trace {
        name: "skew".into(),
        seed,
        chunk,
        epoch: 24,
        records,
    }
}

/// The day-cycle knobs of [`diurnal`].
#[derive(Clone, Copy, Debug)]
pub struct DayCycle {
    /// Ticks per full peak→trough→peak period.
    pub day_ticks: u64,
    /// Mean inter-arrival gap at the busiest phase.
    pub peak_gap: u64,
    /// Mean inter-arrival gap at the quietest phase.
    pub trough_gap: u64,
}

/// Diurnal bursts: the mean inter-arrival gap follows a triangle wave between
/// `cycle.peak_gap` (busy) and `cycle.trough_gap` (quiet) with period
/// `cycle.day_ticks`, so submissions bunch into bursts that pile up inside single
/// drain epochs.
pub fn diurnal(
    seed: u64,
    shape: &WorkShape,
    tenants: u32,
    arrivals: usize,
    cycle: DayCycle,
    chunk: i64,
) -> Trace {
    let DayCycle {
        day_ticks,
        peak_gap,
        trough_gap,
    } = cycle;
    let mut rng = Rng::new(seed);
    let day_ticks = day_ticks.max(2);
    let mut tick = 0u64;
    let mut records = Vec::with_capacity(arrivals);
    for i in 0..arrivals {
        // Triangle interpolation of the current mean gap from the phase of day.
        let phase = tick % day_ticks;
        let half = day_ticks / 2;
        let from_peak = if phase < half {
            phase
        } else {
            day_ticks - phase
        };
        let span = trough_gap.saturating_sub(peak_gap);
        let mean = peak_gap + span * from_peak / half.max(1);
        tick += rng.geometric_gap(mean.max(1));
        let windows = windows_of(shape.window, chunk);
        records.push(TraceRecord {
            tenant: rng.below(tenants.max(1) as u64) as u32,
            app: shape.app,
            geometry: shape.geometry.clone(),
            window: shape.window,
            weight: 1 + (i % 3 == 0) as u32 * 3,
            deadline: (i % 2 == 0).then_some(windows * 3),
            arrival_tick: tick,
        });
    }
    Trace {
        name: "diurnal".into(),
        seed,
        chunk,
        epoch: day_ticks / 2,
        records,
    }
}

/// Geometry churn: every arrival draws one of `pool` distinct geometries (sized
/// `base + 4·k` per side) and alternates between the 2D apps, so almost no
/// submission finds a warm session — with the registry capacity below `2 × pool`
/// this thrashes compiles and evictions.
pub fn geometry_churn(
    seed: u64,
    tenants: u32,
    arrivals: usize,
    pool: u64,
    base: u64,
    window: i64,
    chunk: i64,
) -> Trace {
    let mut rng = Rng::new(seed);
    let pool = pool.max(1);
    let mut tick = 0u64;
    let mut records = Vec::with_capacity(arrivals);
    for _ in 0..arrivals {
        tick += rng.geometric_gap(2);
        let k = rng.below(pool);
        let n = base + 4 * k;
        let app = if rng.below(2) == 0 {
            TraceApp::Heat2d
        } else {
            TraceApp::Life
        };
        records.push(TraceRecord {
            tenant: rng.below(tenants.max(1) as u64) as u32,
            app,
            geometry: vec![n, n],
            window,
            weight: 1,
            deadline: None,
            arrival_tick: tick,
        });
    }
    Trace {
        name: "churn".into(),
        seed,
        chunk,
        epoch: 16,
        records,
    }
}

/// The giant-grid knobs of [`giant_grid`].
#[derive(Clone, Copy, Debug)]
pub struct GiantCell {
    /// Every `every`-th arrival is a giant (0 disables giants).
    pub every: usize,
    /// Cells of the giant 1D grid.
    pub cells: u64,
    /// Steps per giant submission.
    pub window: i64,
}

/// Sharded giants amid background traffic: every `giant.every`-th arrival is a
/// giant 1D heat grid of `giant.cells` cells (replayed through `submit_sharded`, so
/// its tile chains and exchange barriers interleave with the background 2D tenants
/// on the same drain clock).
pub fn giant_grid(
    seed: u64,
    background: &WorkShape,
    tenants: u32,
    arrivals: usize,
    giant: GiantCell,
    chunk: i64,
) -> Trace {
    let GiantCell {
        every: giant_every,
        cells: giant_cells,
        window: giant_window,
    } = giant;
    let mut rng = Rng::new(seed);
    let mut tick = 0u64;
    let mut records = Vec::with_capacity(arrivals);
    for i in 0..arrivals {
        tick += rng.geometric_gap(4);
        let record = if giant_every > 0 && i % giant_every == giant_every - 1 {
            TraceRecord {
                tenant: rng.below(tenants.max(1) as u64) as u32,
                app: TraceApp::HeatGiant1d,
                geometry: vec![giant_cells],
                window: giant_window,
                weight: 2,
                deadline: None,
                arrival_tick: tick,
            }
        } else {
            TraceRecord {
                tenant: rng.below(tenants.max(1) as u64) as u32,
                app: background.app,
                geometry: background.geometry.clone(),
                window: background.window,
                weight: 1,
                deadline: None,
                arrival_tick: tick,
            }
        };
        records.push(record);
    }
    Trace {
        name: "giant".into(),
        seed,
        chunk,
        epoch: 32,
        records,
    }
}

/// Drain windows a `window`-step submission spans at chunk height `chunk` — the
/// unit logical deadlines are quoted in.
fn windows_of(window: i64, chunk: i64) -> u64 {
    (window.max(0) as u64).div_ceil(chunk.max(1) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_trace() {
        let shape = WorkShape::heat2d(48, 8);
        let a = poisson(42, &shape, 8, 50, 3, 4);
        let b = poisson(42, &shape, 8, 50, 3, 4);
        assert_eq!(a, b);
        let c = poisson(43, &shape, 8, 50, 3, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_monotone() {
        let shape = WorkShape::life(32, 4);
        for trace in [
            poisson(1, &shape, 4, 40, 2, 4),
            heavy_tail(2, &shape, 16, 40, 4),
            diurnal(
                3,
                &shape,
                4,
                40,
                DayCycle {
                    day_ticks: 64,
                    peak_gap: 1,
                    trough_gap: 8,
                },
                4,
            ),
            geometry_churn(4, 4, 40, 10, 24, 4, 4),
            giant_grid(
                5,
                &shape,
                4,
                40,
                GiantCell {
                    every: 7,
                    cells: 4096,
                    window: 8,
                },
                4,
            ),
        ] {
            let ticks: Vec<u64> = trace.records.iter().map(|r| r.arrival_tick).collect();
            assert!(ticks.windows(2).all(|w| w[0] <= w[1]), "{}", trace.name);
            assert_eq!(trace.records.len(), 40);
        }
    }

    #[test]
    fn heavy_tail_is_skewed_with_whale_weights() {
        let shape = WorkShape::heat2d(48, 8);
        let t = heavy_tail(7, &shape, 16, 400, 4);
        let whale_cut = 16u32.div_ceil(4);
        let whale_records = t.records.iter().filter(|r| r.tenant < whale_cut).count();
        // Harmonic mass of the top quarter is well above a uniform quarter.
        assert!(
            whale_records > t.records.len() / 3,
            "whales got {whale_records}/400"
        );
        for r in &t.records {
            if r.tenant < whale_cut {
                assert_eq!((r.weight, r.deadline), (8, None));
            } else {
                assert_eq!(r.weight, 1);
                assert!(r.deadline.is_some());
            }
        }
    }

    #[test]
    fn churn_draws_many_distinct_geometries() {
        let t = geometry_churn(11, 4, 200, 12, 24, 4, 4);
        assert!(t.distinct_servers() > 12, "{}", t.distinct_servers());
    }

    #[test]
    fn giant_grid_mixes_sharded_records() {
        let shape = WorkShape::heat2d(48, 8);
        let t = giant_grid(
            9,
            &shape,
            4,
            40,
            GiantCell {
                every: 8,
                cells: 4096,
                window: 8,
            },
            4,
        );
        let giants = t
            .records
            .iter()
            .filter(|r| r.app == TraceApp::HeatGiant1d)
            .count();
        assert_eq!(giants, 5);
    }

    #[test]
    fn generated_traces_round_trip() {
        let shape = WorkShape::wave3d(12, 4);
        let t = diurnal(
            21,
            &shape,
            6,
            30,
            DayCycle {
                day_ticks: 48,
                peak_gap: 1,
                trough_gap: 6,
            },
            2,
        );
        assert_eq!(Trace::parse(&t.emit()).unwrap(), t);
    }
}
