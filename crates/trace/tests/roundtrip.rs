//! Property-pins the trace format: `parse ∘ emit` is the identity over arbitrary
//! valid traces (including names that need JSON string escaping), emission is
//! deterministic, and the seeded generators are pure functions of their seed.

use pochoir_trace::{Rng, Trace, TraceApp, TraceRecord, TRACE_APPS};
use proptest::prelude::*;

/// Name alphabet chosen to cross every JSON string-escaping path: quotes,
/// backslashes, control characters, and multi-byte UTF-8.
const NAME_CHARS: [char; 12] = ['a', 'z', '0', '9', '_', '-', '.', '"', '\\', '\n', 'é', '🜁'];

/// Expands one proptest-drawn seed into an arbitrary-but-valid trace using the
/// crate's own splitmix generator (the vendored proptest has no collection
/// strategies; a seeded expansion covers the same space reproducibly).
fn arb_trace(seed: u64, records: usize, name_len: usize) -> Trace {
    let mut rng = Rng::new(seed ^ 0xA5A5_5A5A_0F0F_F0F0);
    let name: String = (0..name_len)
        .map(|_| NAME_CHARS[rng.below(NAME_CHARS.len() as u64) as usize])
        .collect();
    let records = (0..records)
        .map(|_| {
            let app = TRACE_APPS[rng.below(TRACE_APPS.len() as u64) as usize];
            let geometry = (0..app.dims())
                .map(|_| {
                    if rng.below(4) == 0 {
                        // Occasionally giant, so huge extents survive the trip.
                        1 + rng.below(1 << 40)
                    } else {
                        1 + rng.below(1 << 10)
                    }
                })
                .collect();
            TraceRecord {
                tenant: rng.below(1 << 20) as u32,
                app,
                geometry,
                window: 1 + rng.below(64) as i64,
                weight: 1 + rng.below(16) as u32,
                deadline: if rng.below(3) == 0 {
                    Some(rng.below(1 << 20))
                } else {
                    None
                },
                arrival_tick: rng.below(1 << 30),
            }
        })
        .collect();
    Trace {
        name,
        seed,
        chunk: 1 + rng.below(16) as i64,
        epoch: 1 + rng.below(1024),
        records,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The round trip the committed corpus relies on: emitting any valid trace
    /// and parsing it back reproduces the value exactly.
    #[test]
    fn parse_emit_is_identity(seed in 0u64..u64::MAX, n in 0usize..32, name_len in 0usize..16) {
        let trace = arb_trace(seed, n, name_len);
        let parsed = Trace::parse(&trace.emit());
        prop_assert_eq!(parsed.as_ref(), Ok(&trace), "document:\n{}", trace.emit());
    }

    /// Emission is a pure function of the trace value (no hidden state), so the
    /// committed files are reproducible artifacts.
    #[test]
    fn emit_is_deterministic(seed in 0u64..u64::MAX, n in 0usize..32) {
        let trace = arb_trace(seed, n, 8);
        prop_assert_eq!(trace.emit(), trace.clone().emit());
    }

    /// A parsed trace re-emits byte-identically: the format has one canonical
    /// rendering, so `trace_corpus --check` can compare bytes, not values.
    #[test]
    fn emit_is_canonical(seed in 0u64..u64::MAX, n in 0usize..32, name_len in 0usize..16) {
        let emitted = arb_trace(seed, n, name_len).emit();
        let reparsed = Trace::parse(&emitted).expect("round trip");
        prop_assert_eq!(&emitted, &reparsed.emit());
    }
}

/// Generator determinism, pinned across calls and processes: the same seed must
/// yield the same trace (the committed corpus depends on it), and different
/// seeds must not collide on the same record stream.
#[test]
fn generators_are_pure_functions_of_their_seed() {
    use pochoir_trace::gen::{self, WorkShape};
    let shape = WorkShape::heat2d(48, 8);
    let a = gen::poisson(42, &shape, 8, 32, 3, 4);
    let b = gen::poisson(42, &shape, 8, 32, 3, 4);
    assert_eq!(a, b);
    let c = gen::poisson(43, &shape, 8, 32, 3, 4);
    assert_ne!(a.records, c.records);

    let d = gen::heavy_tail(7, &shape, 16, 48, 4);
    assert_eq!(d, gen::heavy_tail(7, &shape, 16, 48, 4));
}

/// The closed app vocabulary is total over the enum: every app name parses back.
#[test]
fn app_names_round_trip() {
    for app in TRACE_APPS {
        assert_eq!(TraceApp::parse(app.as_str()), Some(app));
    }
    assert_eq!(TraceApp::parse("unknown"), None);
}
