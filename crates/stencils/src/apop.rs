//! American put option pricing — the `APOP` row of the paper's Figure 3.
//!
//! An American put on a non-dividend stock is priced by backward induction: an explicit
//! finite-difference step of the Black–Scholes PDE on a log-price grid, followed by the
//! early-exercise comparison `V = max(V_continuation, K − S)`.  Each backward time step is
//! a 1-dimensional 3-point stencil with a per-point `max`, which is exactly the shape of
//! the paper's APOP benchmark (a 2,000,000-point grid stepped 10,000 times).

use pochoir_core::prelude::*;
use std::sync::Arc;

/// Market / contract parameters.
#[derive(Clone, Copy, Debug)]
pub struct OptionParams {
    /// Strike price.
    pub strike: f64,
    /// Risk-free rate (per year).
    pub rate: f64,
    /// Volatility (per sqrt-year).
    pub sigma: f64,
    /// Time to expiry in years.
    pub expiry: f64,
    /// Lowest log-price on the grid.
    pub log_s_min: f64,
    /// Highest log-price on the grid.
    pub log_s_max: f64,
}

impl Default for OptionParams {
    fn default() -> Self {
        OptionParams {
            strike: 100.0,
            rate: 0.05,
            sigma: 0.3,
            expiry: 1.0,
            log_s_min: (100.0f64 / 5.0).ln(),
            log_s_max: (100.0f64 * 5.0).ln(),
        }
    }
}

impl OptionParams {
    /// Chooses a log-price grid spacing that keeps the explicit scheme stable *by
    /// construction* for the given grid size and step count (the trinomial-tree spacing
    /// `Δx = σ·√(3·Δt)`), centred on the strike.  This is how large instances such as the
    /// paper's 2,000,000-point APOP run remain well-posed.
    pub fn for_grid(n: usize, steps: i64) -> Self {
        let mut p = OptionParams::default();
        let dt = p.expiry / steps as f64;
        let dx = p.sigma * (3.0 * dt).sqrt();
        let half = dx * (n as f64 - 1.0) / 2.0;
        let centre = p.strike.ln();
        p.log_s_min = centre - half;
        p.log_s_max = centre + half;
        p
    }

    /// The asset price at grid index `i` on an `n`-point grid.
    pub fn price_at(&self, i: usize, n: usize) -> f64 {
        let dx = (self.log_s_max - self.log_s_min) / (n - 1) as f64;
        (self.log_s_min + i as f64 * dx).exp()
    }

    /// Explicit finite-difference coefficients `(down, centre, up)` for an `n`-point grid
    /// and `steps` backward time steps.
    pub fn coefficients(&self, n: usize, steps: i64) -> (f64, f64, f64) {
        let dx = (self.log_s_max - self.log_s_min) / (n - 1) as f64;
        let dt = self.expiry / steps as f64;
        let nu = self.rate - 0.5 * self.sigma * self.sigma;
        let diff = 0.5 * dt * self.sigma * self.sigma / (dx * dx);
        let drift = 0.5 * dt * nu / dx;
        let down = diff - drift;
        let up = diff + drift;
        let centre = 1.0 - 2.0 * diff - dt * self.rate;
        (down, centre, up)
    }

    /// Whether the explicit scheme is stable for this grid/step combination.
    pub fn is_stable(&self, n: usize, steps: i64) -> bool {
        let (down, centre, up) = self.coefficients(n, steps);
        down >= 0.0 && up >= 0.0 && centre >= 0.0
    }

    /// The smallest number of backward steps for which the explicit scheme is stable on an
    /// `n`-point grid (benchmark harnesses clamp their step counts to this).
    pub fn stable_steps(&self, n: usize) -> i64 {
        let mut steps = 1i64;
        while !self.is_stable(n, steps) {
            steps *= 2;
            if steps > 1 << 40 {
                break;
            }
        }
        // Binary-search down for a tighter bound.
        let mut lo = steps / 2;
        let mut hi = steps;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.is_stable(n, mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }
}

/// The American-put pricing kernel.
#[derive(Clone, Debug)]
pub struct ApopKernel {
    /// Pre-computed immediate-exercise payoff `max(K − Sᵢ, 0)` per grid point.
    pub payoff: Arc<Vec<f64>>,
    /// Down/centre/up finite-difference coefficients.
    pub coeffs: (f64, f64, f64),
}

impl StencilKernel<f64, 1> for ApopKernel {
    #[inline]
    fn update<A: GridAccess<f64, 1>>(&self, g: &A, t: i64, x: [i64; 1]) {
        let (down, centre, up) = self.coeffs;
        let continuation =
            down * g.get(t, [x[0] - 1]) + centre * g.get(t, [x[0]]) + up * g.get(t, [x[0] + 1]);
        let exercise = self.payoff[x[0] as usize];
        g.set(t + 1, x, continuation.max(exercise));
    }

    /// Row-oriented interior clone: one extended unit-stride row plus a slice of the
    /// pre-computed payoff vector, computing the same expression in the same order as
    /// [`ApopKernel::update`] — results stay bitwise identical.
    fn update_row<A: GridAccess<f64, 1>>(&self, g: &A, t: i64, x0: [i64; 1], len: i64) {
        if len <= 0 {
            return;
        }
        let n = len as usize;
        'fast: {
            // Safety (row contract): interior rows keep the radius-1 footprint
            // in-domain; the read row is of slice `t`, the write row of slice `t+1`.
            let (Some(mut out), Some(center)) =
                (unsafe { (g.row_out(t + 1, x0, n), g.row(t, [x0[0] - 1], n + 2)) })
            else {
                break 'fast;
            };
            let (down, centre, up) = self.coeffs;
            let pay = &self.payoff[x0[0] as usize..x0[0] as usize + n];
            for i in 0..n {
                let continuation = down * center[i] + centre * center[i + 1] + up * center[i + 2];
                out.set(i, continuation.max(pay[i]));
            }
            return;
        }
        update_row_pointwise(self, g, t, x0, len);
    }
}

/// The 3-point shape.
pub fn shape() -> Shape<1> {
    star_shape::<1>(1)
}

/// TRAP/STRAP base-case coarsening tuned for the APOP kernel under the compiled
/// schedule path: wide 1D slabs — the 3-point row kernel is cheap per cell, so large
/// base cases amortize the recursion overhead that dominates narrow 1D stencils.
pub fn tuned_coarsening() -> Coarsening<1> {
    crate::common::profile_coarsening("apop", Coarsening::new(16, [4096]))
}

fn tuned_plan() -> ExecutionPlan<1> {
    crate::common::tuned_plan("apop", tuned_coarsening())
}

/// A reusable executor session for the APOP kernel on an `n`-point grid: TRAP on the
/// compiled-schedule path with the tuned coarsening preset, pre-compiled for windows
/// of height `window`.  `steps` is the total backward step count the grid spacing and
/// coefficients are derived from (see [`OptionParams::coefficients`]).
pub fn session(
    params: &OptionParams,
    n: usize,
    steps: i64,
    window: i64,
) -> CompiledStencil<f64, ApopKernel, 1> {
    CompiledStencil::new(
        StencilSpec::new(shape()),
        kernel_for(params, n, steps),
        tuned_plan(),
        [n],
        window,
    )
}

/// A serving preset for the APOP kernel: a [`StencilServer`] over the tuned TRAP plan,
/// its program shared process-wide through the session registry.  Submit many value
/// grids of the same extent (e.g. one per contract scenario), then `drain()` to price
/// them as a pipelined multi-tenant workload in `window`-step chunks.
pub fn serve(
    params: &OptionParams,
    n: usize,
    steps: i64,
    window: i64,
) -> StencilServer<f64, ApopKernel, 1> {
    StencilServer::new(
        StencilSpec::new(shape()),
        kernel_for(params, n, steps),
        tuned_plan(),
        [n],
        window,
    )
}

/// Fallible variant of [`serve`]: invalid geometry (or a quarantined / compile-failed
/// registry key) surfaces as a typed [`ServeError`] instead of a panic.
pub fn try_serve(
    params: &OptionParams,
    n: usize,
    steps: i64,
    window: i64,
) -> Result<StencilServer<f64, ApopKernel, 1>, ServeError> {
    StencilServer::try_new(
        StencilSpec::new(shape()),
        kernel_for(params, n, steps),
        tuned_plan(),
        [n],
        window,
    )
}

/// The kernel the presets build: pre-computed payoff plus the FD coefficients for the
/// given grid/step combination.
fn kernel_for(params: &OptionParams, n: usize, steps: i64) -> ApopKernel {
    ApopKernel {
        payoff: Arc::new(payoff(params, n)),
        coeffs: params.coefficients(n, steps),
    }
}

/// The immediate-exercise payoff vector.
pub fn payoff(params: &OptionParams, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (params.strike - params.price_at(i, n)).max(0.0))
        .collect()
}

/// Builds the value grid at expiry (option value = payoff) with the asymptotic boundary
/// values (deep in the money → `K`, far out of the money → `0`).
pub fn build(params: &OptionParams, n: usize) -> PochoirArray<f64, 1> {
    let pay = payoff(params, n);
    let mut arr = PochoirArray::new([n]);
    let strike = params.strike;
    arr.register_boundary(Boundary::constant_fn(
        move |_t, x| {
            if x[0] < 0 {
                strike
            } else {
                0.0
            }
        },
    ));
    arr.fill_time_slice(0, |x| pay[x[0] as usize]);
    arr
}

/// Reference implementation: plain backward-induction loop.
pub fn reference(params: &OptionParams, n: usize, steps: i64) -> Vec<f64> {
    let pay = payoff(params, n);
    let coeffs = params.coefficients(n, steps);
    let mut prev = pay.clone();
    let mut next = prev.clone();
    for _ in 0..steps {
        for i in 0..n {
            let down_v = if i == 0 { params.strike } else { prev[i - 1] };
            let up_v = if i + 1 == n { 0.0 } else { prev[i + 1] };
            let cont = coeffs.0 * down_v + coeffs.1 * prev[i] + coeffs.2 * up_v;
            next[i] = cont.max(pay[i]);
        }
        std::mem::swap(&mut prev, &mut next);
    }
    prev
}

/// The paper's Figure 3 problem size: 2,000,000 grid points, 10,000 steps.
pub const PAPER_SIZE: (usize, i64) = (2_000_000, 10_000);

/// Prices the option with the requested engine plan; returns the value grid after
/// `steps` backward steps.
pub fn run_apop<P: pochoir_runtime::Parallelism>(
    params: &OptionParams,
    n: usize,
    steps: i64,
    plan: &pochoir_core::engine::ExecutionPlan<1>,
    par: &P,
) -> Vec<f64> {
    let kernel = ApopKernel {
        payoff: Arc::new(payoff(params, n)),
        coeffs: params.coefficients(n, steps),
    };
    let spec = StencilSpec::new(shape());
    let mut arr = build(params, n);
    pochoir_core::engine::run(&mut arr, &spec, &kernel, 0, steps, plan, par);
    arr.snapshot(steps)
}

/// Interpolates the option value at spot price `s` from a value grid.
pub fn value_at_spot(params: &OptionParams, values: &[f64], s: f64) -> f64 {
    let n = values.len();
    let dx = (params.log_s_max - params.log_s_min) / (n - 1) as f64;
    let pos = (s.ln() - params.log_s_min) / dx;
    let i = (pos.floor() as usize).min(n - 2);
    let frac = pos - i as f64;
    values[i] * (1.0 - frac) + values[i + 1] * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use pochoir_core::engine::{Coarsening, EngineKind, ExecutionPlan};
    use pochoir_runtime::Serial;

    const N: usize = 256;
    const STEPS: i64 = 800;

    #[test]
    fn scheme_is_stable_for_test_sizes() {
        assert!(OptionParams::default().is_stable(N, STEPS));
        assert!(OptionParams::default().stable_steps(N) <= STEPS);
    }

    #[test]
    fn for_grid_is_always_stable() {
        for (n, steps) in [(1_000usize, 50i64), (50_000, 500), (2_000_000, 10_000)] {
            let p = OptionParams::for_grid(n, steps);
            assert!(p.is_stable(n, steps), "unstable for n={n}, steps={steps}");
        }
    }

    #[test]
    fn engines_match_reference() {
        let params = OptionParams::default();
        let expected = reference(&params, N, STEPS);
        for engine in [EngineKind::Trap, EngineKind::Strap, EngineKind::LoopsSerial] {
            let plan = ExecutionPlan::new(engine).with_coarsening(Coarsening::new(8, [64]));
            let got = run_apop(&params, N, STEPS, &plan, &Serial);
            for (g, e) in got.iter().zip(expected.iter()) {
                assert!((g - e).abs() < 1e-9, "{engine:?}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn row_and_point_base_cases_are_bitwise_identical() {
        use pochoir_core::engine::BaseCase;
        let params = OptionParams::default();
        for engine in [EngineKind::Trap, EngineKind::Strap, EngineKind::LoopsSerial] {
            let mut snaps = Vec::new();
            for base_case in [BaseCase::Row, BaseCase::Point] {
                let plan = ExecutionPlan::new(engine)
                    .with_coarsening(Coarsening::new(4, [16]))
                    .with_base_case(base_case);
                snaps.push(run_apop(&params, N, STEPS, &plan, &Serial));
            }
            assert_eq!(snaps[0], snaps[1], "{engine:?}");
        }
    }

    #[test]
    fn american_put_is_worth_at_least_intrinsic_value() {
        let params = OptionParams::default();
        let values = run_apop(&params, N, STEPS, &ExecutionPlan::trap(), &Serial);
        let pay = payoff(&params, N);
        for (v, p) in values.iter().zip(pay.iter()) {
            assert!(v + 1e-9 >= *p, "value {v} below intrinsic {p}");
        }
    }

    #[test]
    fn american_put_dominates_european_put_at_the_money() {
        // Against the Black-Scholes closed form for the *European* put: the American
        // value must be at least as large.
        let params = OptionParams::default();
        let values = run_apop(&params, N, STEPS, &ExecutionPlan::trap(), &Serial);
        let spot = 100.0;
        let american = value_at_spot(&params, &values, spot);
        let european = black_scholes_put(
            spot,
            params.strike,
            params.rate,
            params.sigma,
            params.expiry,
        );
        assert!(
            american >= european - 0.05,
            "american {american} < european {european}"
        );
        // And it should be in a sensible range (a rough sanity band around the known
        // at-the-money value of ~10.3 for these parameters).
        assert!(
            american > 8.0 && american < 14.0,
            "american value {american} out of range"
        );
    }

    fn black_scholes_put(s: f64, k: f64, r: f64, sigma: f64, t: f64) -> f64 {
        let d1 = ((s / k).ln() + (r + 0.5 * sigma * sigma) * t) / (sigma * t.sqrt());
        let d2 = d1 - sigma * t.sqrt();
        k * (-r * t).exp() * normal_cdf(-d2) - s * normal_cdf(-d1)
    }

    fn normal_cdf(x: f64) -> f64 {
        0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
    }

    // Abramowitz–Stegun approximation of erf, accurate to ~1e-7.
    fn erf(x: f64) -> f64 {
        let sign = if x < 0.0 { -1.0 } else { 1.0 };
        let x = x.abs();
        let t = 1.0 / (1.0 + 0.3275911 * x);
        let y = 1.0
            - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
                + 0.254829592)
                * t
                * (-x * x).exp();
        sign * y
    }
}
