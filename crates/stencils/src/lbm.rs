//! A lattice-Boltzmann method (LBM) — the `LBM 3` row of the paper's Figure 3.
//!
//! The paper's LBM benchmark is a 3D lattice-Boltzmann flow solver: a "complex stencil
//! having many states" — each lattice site carries a whole vector of particle
//! distribution functions.  This reproduction implements a D3Q7 BGK (single-relaxation
//! time) lattice: seven distributions per cell (rest + the six axis directions), a
//! streaming step that pulls from the axis neighbours, and a BGK collision relaxing
//! toward the local equilibrium.  The structure — multi-field cells, gather-style
//! streaming, heavy per-point arithmetic — matches what makes LBM interesting as a
//! stencil benchmark, at laptop-friendly cost.

use pochoir_core::prelude::*;

/// Number of discrete velocities in the D3Q7 lattice.
pub const Q: usize = 7;

/// The D3Q7 velocity set: rest plus ±x, ±y, ±z.
pub const VELOCITIES: [[i64; 3]; Q] = [
    [0, 0, 0],
    [1, 0, 0],
    [-1, 0, 0],
    [0, 1, 0],
    [0, -1, 0],
    [0, 0, 1],
    [0, 0, -1],
];

/// Lattice weights of D3Q7 (rest particle 1/4, each direction 1/8).
pub const WEIGHTS: [f64; Q] = [0.25, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125];

/// One lattice site: the seven distribution functions.
pub type Cell = [f64; Q];

/// The D3Q7 BGK stream-and-collide kernel.
#[derive(Clone, Copy, Debug)]
pub struct LbmKernel {
    /// BGK relaxation parameter ω ∈ (0, 2).
    pub omega: f64,
}

impl Default for LbmKernel {
    fn default() -> Self {
        LbmKernel { omega: 1.2 }
    }
}

impl StencilKernel<Cell, 3> for LbmKernel {
    #[inline]
    fn update<A: GridAccess<Cell, 3>>(&self, g: &A, t: i64, x: [i64; 3]) {
        // Streaming: distribution q arrives from the neighbour opposite to its velocity.
        let mut f = [0.0f64; Q];
        for (q, v) in VELOCITIES.iter().enumerate() {
            let src = [x[0] - v[0], x[1] - v[1], x[2] - v[2]];
            f[q] = g.get(t, src)[q];
        }
        // Macroscopic density and momentum.
        let rho: f64 = f.iter().sum();
        let mut u = [0.0f64; 3];
        for (q, v) in VELOCITIES.iter().enumerate() {
            for d in 0..3 {
                u[d] += f[q] * v[d] as f64;
            }
        }
        if rho > 0.0 {
            for d in &mut u {
                *d /= rho;
            }
        }
        // BGK collision toward the (linearised) D3Q7 equilibrium.
        let cs2 = 0.25; // lattice speed of sound squared for D3Q7
        let mut out = [0.0f64; Q];
        for (q, v) in VELOCITIES.iter().enumerate() {
            let cu = (0..3).map(|d| v[d] as f64 * u[d]).sum::<f64>();
            let feq = WEIGHTS[q] * rho * (1.0 + cu / cs2);
            out[q] = f[q] + self.omega * (feq - f[q]);
        }
        g.set(t + 1, x, out);
    }

    /// Row-oriented interior clone exercising the multi-field-per-cell row ABI:
    /// five row addresses resolved once (the extended unit-stride row carrying the
    /// rest and ±z distributions, plus the four ±x/±y legs), then a slice-walking
    /// loop computing the same expression in the same order as
    /// [`LbmKernel::update`] — results stay bitwise identical.
    fn update_row<A: GridAccess<Cell, 3>>(&self, g: &A, t: i64, x0: [i64; 3], len: i64) {
        if len <= 0 {
            return;
        }
        let n = len as usize;
        'fast: {
            // Safety (row contract): interior rows keep the radius-1 footprint
            // in-domain; reads are of slice `t`, the write row of distinct slice `t+1`.
            let (Some(mut out), Some(center)) = (unsafe {
                (
                    g.row_out(t + 1, x0, n),
                    g.row(t, [x0[0], x0[1], x0[2] - 1], n + 2),
                )
            }) else {
                break 'fast;
            };
            let (Some(xm), Some(xp), Some(ym), Some(yp)) = (unsafe {
                (
                    g.row(t, [x0[0] - 1, x0[1], x0[2]], n),
                    g.row(t, [x0[0] + 1, x0[1], x0[2]], n),
                    g.row(t, [x0[0], x0[1] - 1, x0[2]], n),
                    g.row(t, [x0[0], x0[1] + 1, x0[2]], n),
                )
            }) else {
                break 'fast;
            };
            let cs2 = 0.25;
            for i in 0..n {
                // Streaming: q arrives from the neighbour opposite its velocity —
                // rest from the centre, ±x/±y from the resolved legs, ±z from the
                // extended centre row (q5 streams from z−1, q6 from z+1).
                let f: [f64; Q] = [
                    center[i + 1][0],
                    xm[i][1],
                    xp[i][2],
                    ym[i][3],
                    yp[i][4],
                    center[i][5],
                    center[i + 2][6],
                ];
                let rho: f64 = f.iter().sum();
                let mut u = [0.0f64; 3];
                for (q, v) in VELOCITIES.iter().enumerate() {
                    for d in 0..3 {
                        u[d] += f[q] * v[d] as f64;
                    }
                }
                if rho > 0.0 {
                    for d in &mut u {
                        *d /= rho;
                    }
                }
                let mut next = [0.0f64; Q];
                for (q, v) in VELOCITIES.iter().enumerate() {
                    let cu = (0..3).map(|d| v[d] as f64 * u[d]).sum::<f64>();
                    let feq = WEIGHTS[q] * rho * (1.0 + cu / cs2);
                    next[q] = f[q] + self.omega * (feq - f[q]);
                }
                out.set(i, next);
            }
            return;
        }
        update_row_pointwise(self, g, t, x0, len);
    }
}

/// The LBM stencil shape: the 7-point star of radius 1 (each distribution streams from an
/// axis neighbour).
pub fn shape() -> Shape<3> {
    star_shape::<3>(1)
}

/// TRAP/STRAP base-case coarsening tuned for the D3Q7 LBM kernel under the compiled
/// schedule path: the unit-stride dimension stays uncut so the multi-field row kernel
/// gets full-width rows, with 8×8 tiles on the outer axes (the 56-byte cells make rows
/// heavy enough that small slabs already amortize the per-leaf overhead).
pub fn tuned_coarsening() -> Coarsening<3> {
    crate::common::profile_coarsening("lbm3d", Coarsening::new(5, [8, 8, 1000]))
}

fn tuned_plan() -> ExecutionPlan<3> {
    crate::common::tuned_plan("lbm3d", tuned_coarsening())
}

/// A reusable executor session for the D3Q7 LBM kernel: TRAP on the compiled-schedule
/// path with the tuned coarsening preset, pre-compiled for windows of height `window`
/// on lattices of extent `sizes`.
pub fn session(sizes: [usize; 3], window: i64) -> CompiledStencil<Cell, LbmKernel, 3> {
    CompiledStencil::new(
        StencilSpec::new(shape()),
        LbmKernel::default(),
        tuned_plan(),
        sizes,
        window,
    )
}

/// A serving preset for the D3Q7 LBM kernel: a [`StencilServer`] over the tuned TRAP
/// plan, its program shared process-wide through the session registry.  Submit many
/// same-extent lattices, then `drain()` to run them as a pipelined multi-tenant
/// workload in `window`-step chunks.
pub fn serve(sizes: [usize; 3], window: i64) -> StencilServer<Cell, LbmKernel, 3> {
    StencilServer::new(
        StencilSpec::new(shape()),
        LbmKernel::default(),
        tuned_plan(),
        sizes,
        window,
    )
}

/// Fallible variant of [`serve`]: invalid geometry (or a quarantined / compile-failed
/// registry key) surfaces as a typed [`ServeError`] instead of a panic.
pub fn try_serve(
    sizes: [usize; 3],
    window: i64,
) -> Result<StencilServer<Cell, LbmKernel, 3>, ServeError> {
    StencilServer::try_new(
        StencilSpec::new(shape()),
        LbmKernel::default(),
        tuned_plan(),
        sizes,
        window,
    )
}

/// Builds a periodic box at rest with a density perturbation in the middle.
pub fn build(sizes: [usize; 3]) -> PochoirArray<Cell, 3> {
    let mut a: PochoirArray<Cell, 3> = PochoirArray::new(sizes);
    a.register_boundary(Boundary::Periodic);
    a.fill_time_slice(0, |x| equilibrium_cell(initial_density(sizes, x)));
    a
}

/// Initial density field: 1.0 plus a centred bump.
pub fn initial_density(sizes: [usize; 3], x: [i64; 3]) -> f64 {
    let mut r2 = 0.0;
    for d in 0..3 {
        let c = (sizes[d] as f64 - 1.0) / 2.0;
        let dx = (x[d] as f64 - c) / sizes[d] as f64;
        r2 += dx * dx;
    }
    1.0 + 0.1 * (-20.0 * r2).exp()
}

/// A cell at rest with the given density.
pub fn equilibrium_cell(rho: f64) -> Cell {
    let mut c = [0.0; Q];
    for q in 0..Q {
        c[q] = WEIGHTS[q] * rho;
    }
    c
}

/// Total mass (sum of all distributions) in one time slice — conserved by the update.
pub fn total_mass(a: &PochoirArray<Cell, 3>, t: i64) -> f64 {
    a.snapshot(t).iter().map(|c| c.iter().sum::<f64>()).sum()
}

/// The paper's Figure 3 problem size: 100×100×130 for 3,000 steps.
pub const PAPER_SIZE: ([usize; 3], i64) = ([100, 100, 130], 3000);

#[cfg(test)]
mod tests {
    use super::*;
    use pochoir_core::engine::{run, Coarsening, EngineKind, ExecutionPlan};
    use pochoir_runtime::Serial;

    #[test]
    fn shape_is_radius_one_star() {
        let s = shape();
        assert_eq!(s.slopes(), [1, 1, 1]);
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn weights_sum_to_one() {
        assert!((WEIGHTS.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mass_is_conserved_on_a_torus() {
        let sizes = [8usize, 8, 8];
        let spec = StencilSpec::new(shape());
        let mut a = build(sizes);
        let m0 = total_mass(&a, 0);
        run(
            &mut a,
            &spec,
            &LbmKernel::default(),
            0,
            10,
            &ExecutionPlan::trap(),
            &Serial,
        );
        let m1 = total_mass(&a, 10);
        assert!(
            (m0 - m1).abs() < 1e-9 * m0.abs(),
            "mass drifted: {m0} -> {m1}"
        );
    }

    #[test]
    fn engines_agree_bitwise() {
        let sizes = [7usize, 6, 9];
        let steps = 5;
        let spec = StencilSpec::new(shape());
        let k = LbmKernel::default();
        let mut reference = build(sizes);
        run(
            &mut reference,
            &spec,
            &k,
            0,
            steps,
            &ExecutionPlan::loops_serial(),
            &Serial,
        );
        let expected = reference.snapshot(steps);
        for engine in [EngineKind::Trap, EngineKind::Strap] {
            let mut a = build(sizes);
            let plan = ExecutionPlan::new(engine).with_coarsening(Coarsening::new(2, [3, 3, 3]));
            run(&mut a, &spec, &k, 0, steps, &plan, &Serial);
            assert_eq!(a.snapshot(steps), expected, "{engine:?}");
        }
    }

    #[test]
    fn row_and_point_base_cases_are_bitwise_identical() {
        use pochoir_core::engine::BaseCase;
        let sizes = [7usize, 9, 11];
        let steps = 5;
        let spec = StencilSpec::new(shape());
        let k = LbmKernel::default();
        for engine in [EngineKind::Trap, EngineKind::Strap, EngineKind::LoopsSerial] {
            let mut snaps = Vec::new();
            for base_case in [BaseCase::Row, BaseCase::Point] {
                let mut a = build(sizes);
                let plan = ExecutionPlan::new(engine)
                    .with_coarsening(Coarsening::new(2, [3, 3, 4]))
                    .with_base_case(base_case);
                run(&mut a, &spec, &k, 0, steps, &plan, &Serial);
                snaps.push(a.snapshot(steps));
            }
            assert_eq!(snaps[0], snaps[1], "{engine:?}");
        }
    }

    #[test]
    fn session_preset_replays_windows() {
        let s = session([6, 6, 8], 2);
        let mut a = build([6, 6, 8]);
        let m0 = total_mass(&a, 0);
        s.run(&mut a, 0, 4);
        let m1 = total_mass(&a, 4);
        assert!((m0 - m1).abs() < 1e-9 * m0.abs());
    }

    #[test]
    fn uniform_equilibrium_is_a_fixed_point() {
        let sizes = [6usize, 6, 6];
        let spec = StencilSpec::new(shape());
        let mut a: PochoirArray<Cell, 3> = PochoirArray::new(sizes);
        a.register_boundary(Boundary::Periodic);
        a.fill_time_slice(0, |_| equilibrium_cell(1.0));
        run(
            &mut a,
            &spec,
            &LbmKernel::default(),
            0,
            4,
            &ExecutionPlan::trap(),
            &Serial,
        );
        for cell in a.snapshot(4) {
            for q in 0..Q {
                assert!((cell[q] - WEIGHTS[q]).abs() < 1e-12);
            }
        }
    }
}
