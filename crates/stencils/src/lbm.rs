//! A lattice-Boltzmann method (LBM) — the `LBM 3` row of the paper's Figure 3.
//!
//! The paper's LBM benchmark is a 3D lattice-Boltzmann flow solver: a "complex stencil
//! having many states" — each lattice site carries a whole vector of particle
//! distribution functions.  This reproduction implements a D3Q7 BGK (single-relaxation
//! time) lattice: seven distributions per cell (rest + the six axis directions), a
//! streaming step that pulls from the axis neighbours, and a BGK collision relaxing
//! toward the local equilibrium.  The structure — multi-field cells, gather-style
//! streaming, heavy per-point arithmetic — matches what makes LBM interesting as a
//! stencil benchmark, at laptop-friendly cost.

use pochoir_core::prelude::*;

/// Number of discrete velocities in the D3Q7 lattice.
pub const Q: usize = 7;

/// The D3Q7 velocity set: rest plus ±x, ±y, ±z.
pub const VELOCITIES: [[i64; 3]; Q] = [
    [0, 0, 0],
    [1, 0, 0],
    [-1, 0, 0],
    [0, 1, 0],
    [0, -1, 0],
    [0, 0, 1],
    [0, 0, -1],
];

/// Lattice weights of D3Q7 (rest particle 1/4, each direction 1/8).
pub const WEIGHTS: [f64; Q] = [0.25, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125];

/// One lattice site: the seven distribution functions.
pub type Cell = [f64; Q];

/// The D3Q7 BGK stream-and-collide kernel.
#[derive(Clone, Copy, Debug)]
pub struct LbmKernel {
    /// BGK relaxation parameter ω ∈ (0, 2).
    pub omega: f64,
}

impl Default for LbmKernel {
    fn default() -> Self {
        LbmKernel { omega: 1.2 }
    }
}

impl StencilKernel<Cell, 3> for LbmKernel {
    #[inline]
    fn update<A: GridAccess<Cell, 3>>(&self, g: &A, t: i64, x: [i64; 3]) {
        // Streaming: distribution q arrives from the neighbour opposite to its velocity.
        let mut f = [0.0f64; Q];
        for (q, v) in VELOCITIES.iter().enumerate() {
            let src = [x[0] - v[0], x[1] - v[1], x[2] - v[2]];
            f[q] = g.get(t, src)[q];
        }
        // Macroscopic density and momentum.
        let rho: f64 = f.iter().sum();
        let mut u = [0.0f64; 3];
        for (q, v) in VELOCITIES.iter().enumerate() {
            for d in 0..3 {
                u[d] += f[q] * v[d] as f64;
            }
        }
        if rho > 0.0 {
            for d in &mut u {
                *d /= rho;
            }
        }
        // BGK collision toward the (linearised) D3Q7 equilibrium.
        let cs2 = 0.25; // lattice speed of sound squared for D3Q7
        let mut out = [0.0f64; Q];
        for (q, v) in VELOCITIES.iter().enumerate() {
            let cu = (0..3).map(|d| v[d] as f64 * u[d]).sum::<f64>();
            let feq = WEIGHTS[q] * rho * (1.0 + cu / cs2);
            out[q] = f[q] + self.omega * (feq - f[q]);
        }
        g.set(t + 1, x, out);
    }
}

/// The LBM stencil shape: the 7-point star of radius 1 (each distribution streams from an
/// axis neighbour).
pub fn shape() -> Shape<3> {
    star_shape::<3>(1)
}

/// Builds a periodic box at rest with a density perturbation in the middle.
pub fn build(sizes: [usize; 3]) -> PochoirArray<Cell, 3> {
    let mut a: PochoirArray<Cell, 3> = PochoirArray::new(sizes);
    a.register_boundary(Boundary::Periodic);
    a.fill_time_slice(0, |x| equilibrium_cell(initial_density(sizes, x)));
    a
}

/// Initial density field: 1.0 plus a centred bump.
pub fn initial_density(sizes: [usize; 3], x: [i64; 3]) -> f64 {
    let mut r2 = 0.0;
    for d in 0..3 {
        let c = (sizes[d] as f64 - 1.0) / 2.0;
        let dx = (x[d] as f64 - c) / sizes[d] as f64;
        r2 += dx * dx;
    }
    1.0 + 0.1 * (-20.0 * r2).exp()
}

/// A cell at rest with the given density.
pub fn equilibrium_cell(rho: f64) -> Cell {
    let mut c = [0.0; Q];
    for q in 0..Q {
        c[q] = WEIGHTS[q] * rho;
    }
    c
}

/// Total mass (sum of all distributions) in one time slice — conserved by the update.
pub fn total_mass(a: &PochoirArray<Cell, 3>, t: i64) -> f64 {
    a.snapshot(t).iter().map(|c| c.iter().sum::<f64>()).sum()
}

/// The paper's Figure 3 problem size: 100×100×130 for 3,000 steps.
pub const PAPER_SIZE: ([usize; 3], i64) = ([100, 100, 130], 3000);

#[cfg(test)]
mod tests {
    use super::*;
    use pochoir_core::engine::{run, Coarsening, EngineKind, ExecutionPlan};
    use pochoir_runtime::Serial;

    #[test]
    fn shape_is_radius_one_star() {
        let s = shape();
        assert_eq!(s.slopes(), [1, 1, 1]);
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn weights_sum_to_one() {
        assert!((WEIGHTS.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mass_is_conserved_on_a_torus() {
        let sizes = [8usize, 8, 8];
        let spec = StencilSpec::new(shape());
        let mut a = build(sizes);
        let m0 = total_mass(&a, 0);
        run(
            &mut a,
            &spec,
            &LbmKernel::default(),
            0,
            10,
            &ExecutionPlan::trap(),
            &Serial,
        );
        let m1 = total_mass(&a, 10);
        assert!(
            (m0 - m1).abs() < 1e-9 * m0.abs(),
            "mass drifted: {m0} -> {m1}"
        );
    }

    #[test]
    fn engines_agree_bitwise() {
        let sizes = [7usize, 6, 9];
        let steps = 5;
        let spec = StencilSpec::new(shape());
        let k = LbmKernel::default();
        let mut reference = build(sizes);
        run(
            &mut reference,
            &spec,
            &k,
            0,
            steps,
            &ExecutionPlan::loops_serial(),
            &Serial,
        );
        let expected = reference.snapshot(steps);
        for engine in [EngineKind::Trap, EngineKind::Strap] {
            let mut a = build(sizes);
            let plan = ExecutionPlan::new(engine).with_coarsening(Coarsening::new(2, [3, 3, 3]));
            run(&mut a, &spec, &k, 0, steps, &plan, &Serial);
            assert_eq!(a.snapshot(steps), expected, "{engine:?}");
        }
    }

    #[test]
    fn uniform_equilibrium_is_a_fixed_point() {
        let sizes = [6usize, 6, 6];
        let spec = StencilSpec::new(shape());
        let mut a: PochoirArray<Cell, 3> = PochoirArray::new(sizes);
        a.register_boundary(Boundary::Periodic);
        a.fill_time_slice(0, |_| equilibrium_cell(1.0));
        run(
            &mut a,
            &spec,
            &LbmKernel::default(),
            0,
            4,
            &ExecutionPlan::trap(),
            &Serial,
        );
        for cell in a.snapshot(4) {
            for q in 0..Q {
                assert!((cell[q] - WEIGHTS[q]).abs() < 1e-12);
            }
        }
    }
}
