//! Pairwise sequence alignment (Needleman–Wunsch with linear gap penalty) — the `PSA` row
//! of the paper's Figure 3.
//!
//! Like [`lcs`](crate::lcs), the quadratic DP is skewed onto anti-diagonals so that it
//! becomes a 1-dimensional, depth-2 stencil over a diamond-shaped domain, with the branchy
//! interior/exterior tests the paper calls out as the reason PSA profits less from the
//! cache-oblivious algorithm.

use pochoir_core::prelude::*;
use std::sync::Arc;

/// Alignment scoring parameters.
#[derive(Clone, Copy, Debug)]
pub struct Scoring {
    /// Score for aligning two identical residues.
    pub matsch: i32,
    /// Score (usually negative) for aligning two different residues.
    pub mismatch: i32,
    /// Penalty (positive number, subtracted) per gap position.
    pub gap: i32,
}

impl Default for Scoring {
    fn default() -> Self {
        Scoring {
            matsch: 2,
            mismatch: -1,
            gap: 1,
        }
    }
}

/// The skewed Needleman–Wunsch kernel.
#[derive(Clone, Debug)]
pub struct PsaKernel {
    /// First sequence (DP rows).
    pub a: Arc<Vec<u8>>,
    /// Second sequence (DP columns).
    pub b: Arc<Vec<u8>>,
    /// Scoring scheme.
    pub scoring: Scoring,
}

impl StencilKernel<i32, 1> for PsaKernel {
    #[inline]
    fn update<A: GridAccess<i32, 1>>(&self, g: &A, t: i64, x: [i64; 1]) {
        let j = x[0];
        let m = self.a.len() as i64;
        let n = self.b.len() as i64;
        let i = (t + 1) - j; // row index of the cell being produced (anti-diagonal t+1)
        let s = self.scoring;
        let value = if i < 0 || i > m || j > n {
            0
        } else if i == 0 {
            -s.gap * j as i32
        } else if j == 0 {
            -s.gap * i as i32
        } else {
            let sub = if self.a[(i - 1) as usize] == self.b[(j - 1) as usize] {
                s.matsch
            } else {
                s.mismatch
            };
            let diag = g.get(t - 1, [j - 1]) + sub; // S[i-1][j-1] + substitution
            let up = g.get(t, [j]) - s.gap; // S[i-1][j] - gap
            let left = g.get(t, [j - 1]) - s.gap; // S[i][j-1] - gap
            diag.max(up).max(left)
        };
        g.set(t + 1, [j], value);
    }

    /// Row-oriented interior clone: three row addresses resolved once (the previous two
    /// anti-diagonals at the two skew offsets), with the interior/exterior branches of
    /// [`PsaKernel::update`] kept in-loop — PSA is the paper's example of a stencil
    /// whose branchiness limits row-kernel gains, and this override exercises exactly
    /// that shape.  Integer DP: results are identical to the per-point path.
    fn update_row<A: GridAccess<i32, 1>>(&self, g: &A, t: i64, x0: [i64; 1], len: i64) {
        if len <= 0 {
            return;
        }
        let n = len as usize;
        'fast: {
            // Safety (row contract): interior rows keep the skewed footprint
            // (offsets 0/−1 at `t`, −1 at `t−1`) in-domain; reads are of slices `t`
            // and `t − 1`, the write row of the distinct slice `t + 1`.
            let (Some(mut out), Some(diag), Some(up_row), Some(left)) = (unsafe {
                (
                    g.row_out(t + 1, x0, n),
                    g.row(t - 1, [x0[0] - 1], n),
                    g.row(t, [x0[0]], n),
                    g.row(t, [x0[0] - 1], n),
                )
            }) else {
                break 'fast;
            };
            let m = self.a.len() as i64;
            let nb = self.b.len() as i64;
            let s = self.scoring;
            for k in 0..n {
                let j = x0[0] + k as i64;
                let i = (t + 1) - j;
                let value = if i < 0 || i > m || j > nb {
                    0
                } else if i == 0 {
                    -s.gap * j as i32
                } else if j == 0 {
                    -s.gap * i as i32
                } else {
                    let sub = if self.a[(i - 1) as usize] == self.b[(j - 1) as usize] {
                        s.matsch
                    } else {
                        s.mismatch
                    };
                    (diag[k] + sub).max(up_row[k] - s.gap).max(left[k] - s.gap)
                };
                out.set(k, value);
            }
            return;
        }
        update_row_pointwise(self, g, t, x0, len);
    }
}

/// Same skewed shape as LCS: `{(1,0), (0,0), (0,−1), (−1,−1)}`.
pub fn shape() -> Shape<1> {
    crate::lcs::shape()
}

/// TRAP/STRAP base-case coarsening tuned for the skewed PSA kernel under the compiled
/// schedule path: wide anti-diagonal slabs — the branchy integer row kernel is cheap
/// per cell, so large base cases amortize recursion overhead.
pub fn tuned_coarsening() -> Coarsening<1> {
    crate::common::profile_coarsening("psa", Coarsening::new(16, [2048]))
}

fn tuned_plan() -> ExecutionPlan<1> {
    crate::common::tuned_plan("psa", tuned_coarsening())
}

/// A reusable executor session for the PSA kernel aligning `a` against `b`: TRAP on
/// the compiled-schedule path with the tuned coarsening preset, pre-compiled for
/// windows of height `window` over the `b.len() + 1` anti-diagonal positions.
pub fn session(
    a: &[u8],
    b: &[u8],
    scoring: Scoring,
    window: i64,
) -> CompiledStencil<i32, PsaKernel, 1> {
    CompiledStencil::new(
        StencilSpec::new(shape()),
        kernel_for(a, b, scoring),
        tuned_plan(),
        [b.len() + 1],
        window,
    )
}

/// A serving preset for the PSA kernel: a [`StencilServer`] over the tuned TRAP plan,
/// its program shared process-wide through the session registry.  Submit many DP
/// arrays of the same extent (one per query aligned against `b`-length subjects),
/// then `drain()` to advance them as a pipelined multi-tenant workload.
pub fn serve(
    a: &[u8],
    b: &[u8],
    scoring: Scoring,
    window: i64,
) -> StencilServer<i32, PsaKernel, 1> {
    StencilServer::new(
        StencilSpec::new(shape()),
        kernel_for(a, b, scoring),
        tuned_plan(),
        [b.len() + 1],
        window,
    )
}

/// Fallible variant of [`serve`]: invalid geometry (or a quarantined / compile-failed
/// registry key) surfaces as a typed [`ServeError`] instead of a panic.
pub fn try_serve(
    a: &[u8],
    b: &[u8],
    scoring: Scoring,
    window: i64,
) -> Result<StencilServer<i32, PsaKernel, 1>, ServeError> {
    StencilServer::try_new(
        StencilSpec::new(shape()),
        kernel_for(a, b, scoring),
        tuned_plan(),
        [b.len() + 1],
        window,
    )
}

/// The kernel the presets build: owned copies of both sequences plus the scoring.
fn kernel_for(a: &[u8], b: &[u8], scoring: Scoring) -> PsaKernel {
    PsaKernel {
        a: Arc::new(a.to_vec()),
        b: Arc::new(b.to_vec()),
        scoring,
    }
}

/// Builds the spatial array with the first two anti-diagonals initialized
/// (`S[0][0] = 0`, `S[0][1] = S[1][0] = −gap`).
pub fn build(b_len: usize, scoring: Scoring) -> PochoirArray<i32, 1> {
    let mut arr = PochoirArray::with_depth([b_len + 1], 2);
    arr.register_boundary(Boundary::Constant(0));
    // Anti-diagonal 0 lives at time 0: only position 0 is meaningful (S[0][0] = 0).
    arr.fill_time_slice(0, |_| 0);
    // Anti-diagonal 1 lives at time 1: S[0][1] at j=1 and S[1][0] at j=0.
    arr.fill_time_slice(1, |x| if x[0] <= 1 { -scoring.gap } else { 0 });
    arr
}

/// Steps needed to fill the table for lengths `m`, `n`.
pub fn steps(m: usize, n: usize) -> i64 {
    (m + n) as i64 - 1
}

/// The final alignment score `S[m][n]`.
pub fn result(arr: &PochoirArray<i32, 1>, m: usize, n: usize) -> i32 {
    arr.get((m + n) as i64, [n as i64])
}

/// Reference implementation: the classical quadratic Needleman–Wunsch table.
pub fn reference(a: &[u8], b: &[u8], s: Scoring) -> i32 {
    let m = a.len();
    let n = b.len();
    let idx = |i: usize, j: usize| i * (n + 1) + j;
    let mut table = vec![0i32; (m + 1) * (n + 1)];
    for j in 0..=n {
        table[idx(0, j)] = -s.gap * j as i32;
    }
    for i in 0..=m {
        table[idx(i, 0)] = -s.gap * i as i32;
    }
    for i in 1..=m {
        for j in 1..=n {
            let sub = if a[i - 1] == b[j - 1] {
                s.matsch
            } else {
                s.mismatch
            };
            table[idx(i, j)] = (table[idx(i - 1, j - 1)] + sub)
                .max(table[idx(i - 1, j)] - s.gap)
                .max(table[idx(i, j - 1)] - s.gap);
        }
    }
    table[idx(m, n)]
}

/// The paper's Figure 3 problem size: 100,000-long sequences, 200,000 steps.
pub const PAPER_SIZE: (usize, usize) = (100_000, 100_000);

/// Runs the PSA stencil end-to-end and returns the alignment score.
pub fn run_psa<P: pochoir_runtime::Parallelism>(
    a: &[u8],
    b: &[u8],
    scoring: Scoring,
    plan: &pochoir_core::engine::ExecutionPlan<1>,
    par: &P,
) -> i32 {
    let kernel = PsaKernel {
        a: Arc::new(a.to_vec()),
        b: Arc::new(b.to_vec()),
        scoring,
    };
    let spec = StencilSpec::new(shape());
    let mut arr = build(b.len(), scoring);
    let t0 = spec.shape().first_step();
    pochoir_core::engine::run(
        &mut arr,
        &spec,
        &kernel,
        t0,
        t0 + steps(a.len(), b.len()),
        plan,
        par,
    );
    result(&arr, a.len(), b.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcs::random_sequence;
    use pochoir_core::engine::{Coarsening, EngineKind, ExecutionPlan};
    use pochoir_runtime::Serial;

    #[test]
    fn identical_sequences_score_match_times_length() {
        let s = Scoring::default();
        let a = random_sequence(50, 4, 7);
        assert_eq!(reference(&a, &a, s), 50 * s.matsch);
        assert_eq!(
            run_psa(&a, &a, s, &ExecutionPlan::trap(), &Serial),
            50 * s.matsch
        );
    }

    #[test]
    fn stencil_matches_reference_on_random_sequences() {
        let s = Scoring::default();
        for (m, n, seed) in [(25usize, 31usize, 11u64), (48, 20, 12), (33, 33, 13)] {
            let a = random_sequence(m, 4, seed);
            let b = random_sequence(n, 4, seed * 3 + 1);
            let expected = reference(&a, &b, s);
            for engine in [EngineKind::Trap, EngineKind::Strap, EngineKind::LoopsSerial] {
                let plan = ExecutionPlan::new(engine).with_coarsening(Coarsening::new(3, [8]));
                assert_eq!(run_psa(&a, &b, s, &plan, &Serial), expected, "{engine:?}");
            }
        }
    }

    #[test]
    fn row_and_point_base_cases_are_identical() {
        use pochoir_core::engine::BaseCase;
        let s = Scoring::default();
        let a = random_sequence(41, 4, 21);
        let b = random_sequence(37, 4, 22);
        let expected = reference(&a, &b, s);
        for engine in [EngineKind::Trap, EngineKind::Strap, EngineKind::LoopsSerial] {
            for base_case in [BaseCase::Row, BaseCase::Point] {
                let plan = ExecutionPlan::new(engine)
                    .with_coarsening(Coarsening::new(3, [8]))
                    .with_base_case(base_case);
                assert_eq!(
                    run_psa(&a, &b, s, &plan, &Serial),
                    expected,
                    "{engine:?} {base_case:?}"
                );
            }
        }
    }

    #[test]
    fn all_gap_alignment_when_one_sequence_is_empty() {
        let s = Scoring::default();
        let a = random_sequence(20, 4, 5);
        assert_eq!(reference(&a, &[], s), -20 * s.gap);
    }

    #[test]
    fn scoring_defaults_are_sane() {
        let s = Scoring::default();
        assert!(s.matsch > 0 && s.gap > 0 && s.mismatch <= 0);
    }
}
