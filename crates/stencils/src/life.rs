//! Conway's Game of Life on a torus — the `Life 2p` row of the paper's Figure 3.
//!
//! Life is a branchy integer stencil over the full Moore (9-point) neighbourhood, which
//! makes it a good stress test for the boundary/interior cloning and for bitwise-exact
//! engine equivalence.

use pochoir_core::prelude::*;

/// The Game of Life update rule.
#[derive(Clone, Copy, Debug, Default)]
pub struct LifeKernel;

impl StencilKernel<u8, 2> for LifeKernel {
    #[inline]
    fn update<A: GridAccess<u8, 2>>(&self, g: &A, t: i64, x: [i64; 2]) {
        let mut neighbours = 0u8;
        for dx in -1..=1i64 {
            for dy in -1..=1i64 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                neighbours += g.get(t, [x[0] + dx, x[1] + dy]);
            }
        }
        let alive = g.get(t, x) == 1;
        let next = match (alive, neighbours) {
            (true, 2) | (true, 3) => 1,
            (false, 3) => 1,
            _ => 0,
        };
        g.set(t + 1, x, next);
    }

    /// Row-oriented interior clone over the three Moore-neighbourhood rows; identical
    /// results to the per-point rule, with one address resolution per row instead of
    /// nine per cell.
    fn update_row<A: GridAccess<u8, 2>>(&self, g: &A, t: i64, x0: [i64; 2], len: i64) {
        if len <= 0 {
            return;
        }
        let n = len as usize;
        'fast: {
            // Safety (row contract): interior rows keep the radius-1 Moore footprint
            // in-domain; reads are of slice `t`, the write row of distinct slice `t+1`.
            let (Some(mut out), Some(up), Some(mid), Some(down)) = (unsafe {
                (
                    g.row_out(t + 1, x0, n),
                    g.row(t, [x0[0] - 1, x0[1] - 1], n + 2),
                    g.row(t, [x0[0], x0[1] - 1], n + 2),
                    g.row(t, [x0[0] + 1, x0[1] - 1], n + 2),
                )
            }) else {
                break 'fast;
            };
            // SIMD clone of the loop below (bitwise-equal); scalar loop when inactive.
            if !crate::simd::life_row(up, mid, down, &mut out, n) {
                for i in 0..n {
                    let neighbours = up[i]
                        + up[i + 1]
                        + up[i + 2]
                        + mid[i]
                        + mid[i + 2]
                        + down[i]
                        + down[i + 1]
                        + down[i + 2];
                    let alive = mid[i + 1] == 1;
                    let next = match (alive, neighbours) {
                        (true, 2) | (true, 3) => 1,
                        (false, 3) => 1,
                        _ => 0,
                    };
                    out.set(i, next);
                }
            }
            return;
        }
        update_row_pointwise(self, g, t, x0, len);
    }
}

/// The Moore-neighbourhood shape (radius-1 box).
pub fn shape() -> Shape<2> {
    box_shape::<2>(1)
}

/// TRAP/STRAP base-case coarsening tuned for Life under the compiled schedule path
/// (measured with `schedule_path_json`): long rows for the byte-wide vectorized row
/// kernel, 64-row outer slabs.
pub fn tuned_coarsening() -> Coarsening<2> {
    crate::common::profile_coarsening("life", Coarsening::new(5, [64, 512]))
}

fn tuned_plan() -> ExecutionPlan<2> {
    crate::common::tuned_plan("life", tuned_coarsening())
}

/// A reusable executor session for Life: TRAP on the compiled-schedule path with the
/// tuned coarsening preset, pre-compiled for windows of height `window` on boards of
/// extent `sizes`.
pub fn session(sizes: [usize; 2], window: i64) -> CompiledStencil<u8, LifeKernel, 2> {
    CompiledStencil::new(
        StencilSpec::new(shape()),
        LifeKernel,
        tuned_plan(),
        sizes,
        window,
    )
}

/// A serving preset for Life: a [`StencilServer`] over the tuned TRAP plan, its
/// program shared process-wide through the session registry.  Submit many same-extent
/// boards (optionally with per-tenant weights and deadlines via `submit_with`), then
/// `drain()` to step them as a pipelined multi-tenant workload in `window`-step
/// chunks.
pub fn serve(sizes: [usize; 2], window: i64) -> StencilServer<u8, LifeKernel, 2> {
    StencilServer::new(
        StencilSpec::new(shape()),
        LifeKernel,
        tuned_plan(),
        sizes,
        window,
    )
}

/// Fallible variant of [`serve`]: invalid geometry (or a quarantined / compile-failed
/// registry key) surfaces as a typed [`ServeError`] instead of a panic.
pub fn try_serve(
    sizes: [usize; 2],
    window: i64,
) -> Result<StencilServer<u8, LifeKernel, 2>, ServeError> {
    StencilServer::try_new(
        StencilSpec::new(shape()),
        LifeKernel,
        tuned_plan(),
        sizes,
        window,
    )
}

/// Builds a toroidal Life board with a deterministic pseudo-random soup.
pub fn build(sizes: [usize; 2], fill_permille: u64) -> PochoirArray<u8, 2> {
    let mut a = PochoirArray::new(sizes);
    a.register_boundary(Boundary::Periodic);
    a.fill_time_slice(0, |x| {
        let h = (x[0] as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(x[1] as u64)
            .wrapping_mul(0xBF58476D1CE4E5B9);
        u8::from(h % 1000 < fill_permille)
    });
    a
}

/// Builds a board with a single glider in the top-left corner (all else dead).
pub fn build_glider(sizes: [usize; 2]) -> PochoirArray<u8, 2> {
    let mut a: PochoirArray<u8, 2> = PochoirArray::new(sizes);
    a.register_boundary(Boundary::Periodic);
    for (x, y) in [(1i64, 2i64), (2, 3), (3, 1), (3, 2), (3, 3)] {
        a.set(0, [x, y], 1);
    }
    a
}

/// Reference implementation: direct double-buffered sweep on a torus.
pub fn reference(sizes: [usize; 2], initial: &[u8], steps: i64) -> Vec<u8> {
    let (nx, ny) = (sizes[0] as i64, sizes[1] as i64);
    let idx = |x: i64, y: i64| ((x.rem_euclid(nx)) * ny + y.rem_euclid(ny)) as usize;
    let mut prev = initial.to_vec();
    let mut next = prev.clone();
    for _ in 0..steps {
        for x in 0..nx {
            for y in 0..ny {
                let mut n = 0u8;
                for dx in -1..=1 {
                    for dy in -1..=1 {
                        if dx == 0 && dy == 0 {
                            continue;
                        }
                        n += prev[idx(x + dx, y + dy)];
                    }
                }
                let alive = prev[idx(x, y)] == 1;
                next[idx(x, y)] = match (alive, n) {
                    (true, 2) | (true, 3) => 1,
                    (false, 3) => 1,
                    _ => 0,
                };
            }
        }
        std::mem::swap(&mut prev, &mut next);
    }
    prev
}

/// The paper's Figure 3 problem size: 16,000² for 500 steps.
pub const PAPER_SIZE: ([usize; 2], i64) = ([16_000, 16_000], 500);

#[cfg(test)]
mod tests {
    use super::*;
    use pochoir_core::engine::{run, Coarsening, EngineKind, ExecutionPlan};
    use pochoir_runtime::Serial;

    #[test]
    fn shape_is_nine_point_with_unit_slopes() {
        let s = shape();
        assert_eq!(s.slopes(), [1, 1]);
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn engines_match_reference_soup() {
        let sizes = [24usize, 20];
        let steps = 10;
        let board = build(sizes, 350);
        let initial = board.snapshot(0);
        let expected = reference(sizes, &initial, steps);
        let spec = StencilSpec::new(shape());
        for engine in [EngineKind::Trap, EngineKind::Strap, EngineKind::LoopsSerial] {
            let mut a = build(sizes, 350);
            let plan = ExecutionPlan::new(engine).with_coarsening(Coarsening::new(2, [5, 5]));
            run(&mut a, &spec, &LifeKernel, 0, steps, &plan, &Serial);
            assert_eq!(a.snapshot(steps), expected, "engine {engine:?}");
        }
    }

    #[test]
    fn row_and_point_base_cases_are_identical() {
        use pochoir_core::engine::BaseCase;
        let sizes = [22usize, 27];
        let steps = 8;
        let spec = StencilSpec::new(shape());
        for engine in [EngineKind::Trap, EngineKind::Strap, EngineKind::LoopsSerial] {
            let mut snaps = Vec::new();
            for base_case in [BaseCase::Row, BaseCase::Point] {
                let mut a = build(sizes, 400);
                let plan = ExecutionPlan::new(engine)
                    .with_coarsening(Coarsening::new(2, [6, 6]))
                    .with_base_case(base_case);
                run(&mut a, &spec, &LifeKernel, 0, steps, &plan, &Serial);
                snaps.push(a.snapshot(steps));
            }
            assert_eq!(snaps[0], snaps[1], "{engine:?}");
        }
    }

    #[test]
    fn glider_translates_by_one_cell_every_four_generations() {
        let sizes = [16usize, 16];
        let spec = StencilSpec::new(shape());
        let mut a = build_glider(sizes);
        let before = a.snapshot(0);
        run(
            &mut a,
            &spec,
            &LifeKernel,
            0,
            4,
            &ExecutionPlan::trap(),
            &Serial,
        );
        let after = a.snapshot(4);
        // After 4 generations the glider pattern is the initial pattern shifted by (1,1).
        let idx = |x: i64, y: i64| (x.rem_euclid(16) * 16 + y.rem_euclid(16)) as usize;
        for x in 0..16i64 {
            for y in 0..16i64 {
                assert_eq!(
                    after[idx(x + 1, y + 1)],
                    before[idx(x, y)],
                    "glider shift mismatch at ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn still_life_block_is_stable() {
        let sizes = [8usize, 8];
        let mut a: PochoirArray<u8, 2> = PochoirArray::new(sizes);
        a.register_boundary(Boundary::Periodic);
        for (x, y) in [(3i64, 3i64), (3, 4), (4, 3), (4, 4)] {
            a.set(0, [x, y], 1);
        }
        let spec = StencilSpec::new(shape());
        let before = a.snapshot(0);
        run(
            &mut a,
            &spec,
            &LifeKernel,
            0,
            5,
            &ExecutionPlan::trap(),
            &Serial,
        );
        assert_eq!(a.snapshot(5), before);
    }
}
