//! Shared helpers: problem-size scaling between the paper's machine-scale experiments and
//! laptop/CI-scale reproductions, plus the tune-profile lookups behind every
//! `tuned_coarsening` preset.

use pochoir_autotune::profile;
use pochoir_core::engine::{Coarsening, ExecutionPlan};
use pochoir_core::simd::SimdPolicy;

/// The coarsening for `app`: the host's persisted tune profile when one exists and has
/// a matching-dimensionality entry (see [`pochoir_autotune::profile`]), else the
/// committed default measured on the reference host.
pub(crate) fn profile_coarsening<const D: usize>(
    app: &str,
    default: Coarsening<D>,
) -> Coarsening<D> {
    profile::cached()
        .and_then(|p| p.coarsening::<D>(app))
        .unwrap_or(default)
}

/// The SIMD policy for `app` from the host's tune profile, defaulting to `Auto`.
pub(crate) fn profile_simd(app: &str) -> SimdPolicy {
    profile::cached()
        .and_then(|p| p.simd_policy(app))
        .unwrap_or_default()
}

/// The TRAP plan every session/serve preset uses: the given (already profile-aware)
/// coarsening plus the profile's SIMD policy for `app`.
pub(crate) fn tuned_plan<const D: usize>(app: &str, coarsening: Coarsening<D>) -> ExecutionPlan<D> {
    ExecutionPlan::trap()
        .with_coarsening(coarsening)
        .with_simd(profile_simd(app))
}

/// How large a benchmark instance to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProblemScale {
    /// Seconds-scale instances used by unit/integration tests.
    Tiny,
    /// Default benchmark-harness scale: large enough to exceed typical L2 caches, small
    /// enough to finish a full Figure-3 style table in minutes on one core.
    Small,
    /// Closer to the paper's sizes; minutes per benchmark.
    Medium,
    /// The paper's actual Figure 3 sizes (hours of compute; provided for completeness).
    Paper,
}

impl ProblemScale {
    /// Parses the common command-line spellings.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Self::Tiny),
            "small" => Some(Self::Small),
            "medium" => Some(Self::Medium),
            "paper" | "full" => Some(Self::Paper),
            _ => None,
        }
    }

    /// Linear scale factor applied to each spatial extent relative to the paper size.
    pub fn space_factor(self) -> f64 {
        match self {
            ProblemScale::Tiny => 1.0 / 200.0,
            ProblemScale::Small => 1.0 / 40.0,
            ProblemScale::Medium => 1.0 / 10.0,
            ProblemScale::Paper => 1.0,
        }
    }

    /// Scale factor applied to the number of time steps relative to the paper size.
    pub fn time_factor(self) -> f64 {
        match self {
            ProblemScale::Tiny => 1.0 / 50.0,
            ProblemScale::Small => 1.0 / 10.0,
            ProblemScale::Medium => 1.0 / 4.0,
            ProblemScale::Paper => 1.0,
        }
    }

    /// Scales a spatial extent, clamping to a sensible minimum.
    pub fn scale_extent(self, paper: usize) -> usize {
        ((paper as f64 * self.space_factor()).round() as usize).max(8)
    }

    /// Scales a step count, clamping to a sensible minimum.
    pub fn scale_steps(self, paper: i64) -> i64 {
        ((paper as f64 * self.time_factor()).round() as i64).max(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsing() {
        assert_eq!(ProblemScale::parse("small"), Some(ProblemScale::Small));
        assert_eq!(ProblemScale::parse("PAPER"), Some(ProblemScale::Paper));
        assert_eq!(ProblemScale::parse("bogus"), None);
    }

    #[test]
    fn paper_scale_is_identity() {
        assert_eq!(ProblemScale::Paper.scale_extent(16_000), 16_000);
        assert_eq!(ProblemScale::Paper.scale_steps(500), 500);
    }

    #[test]
    fn scaling_is_monotone() {
        let paper = 16_000;
        let tiny = ProblemScale::Tiny.scale_extent(paper);
        let small = ProblemScale::Small.scale_extent(paper);
        let medium = ProblemScale::Medium.scale_extent(paper);
        assert!(tiny < small && small < medium && medium < paper);
    }

    #[test]
    fn minimums_are_enforced() {
        assert!(ProblemScale::Tiny.scale_extent(100) >= 8);
        assert!(ProblemScale::Tiny.scale_steps(20) >= 4);
    }
}
