//! # pochoir-stencils
//!
//! The benchmark stencil applications of *"The Pochoir Stencil Compiler"* (SPAA 2011),
//! Figure 3 and Figure 5, implemented on top of `pochoir-core`:
//!
//! | Module | Paper benchmark | Dims | Notes |
//! |---|---|---|---|
//! | [`heat`] | Heat 2 / Heat 2p / Heat 4 | 1–4 | Jacobi heat equation; the paper's running example |
//! | [`life`] | Life 2p | 2 | Conway's Game of Life on a torus (9-point, branchy) |
//! | [`wave`] | Wave 3 | 3 | finite-difference wave equation, **depth-2** stencil |
//! | [`lbm`] | LBM 3 | 3 | lattice-Boltzmann D3Q7 BGK, 7 states per cell |
//! | [`rna`] | RNA 2 | 2 | Nussinov-style DP as a wavefront stencil, heavy branching |
//! | [`psa`] | PSA 1 | 1 | Needleman–Wunsch alignment skewed onto anti-diagonals |
//! | [`lcs`] | LCS 1 | 1 | longest common subsequence, skewed, depth-2 |
//! | [`apop`] | APOP 1 | 1 | American put option, explicit FD + early exercise |
//! | [`points`] | Figure 5 | 3 | the Berkeley 7-point and 27-point kernels |
//!
//! Every module provides the kernel type(s), the declared [`Shape`](pochoir_core::shape::Shape),
//! an initializer, the paper's problem size, and an independent reference implementation
//! against which the engines are tested.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apop;
pub mod common;
pub mod heat;
pub mod lbm;
pub mod lcs;
pub mod life;
pub mod points;
pub mod psa;
pub mod rna;
pub mod simd;
pub mod traffic;
pub mod wave;

pub use common::ProblemScale;
