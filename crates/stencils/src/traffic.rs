//! Deterministic multi-tenant traffic helpers shared by the trace-replay harness
//! (`pochoir-bench`) and the network service (`pochoir-serve`).
//!
//! The whole "bitwise identical across serving paths" story rests on two
//! conventions that every harness must agree on:
//!
//! * **Tenant grids are pure functions of `(app, geometry, tenant)`** — a trace
//!   record carries no grid data, and a network client sends grids it built with
//!   these exact functions, so an in-process replay of a recorded trace
//!   reconstructs the very same inputs the live server saw.
//! * **The digest is FNV-1a over the IEEE bit patterns of the final two time
//!   slices** — "equal digest" means bitwise-equal grids, not approximately
//!   equal, and hashing both live slices makes the claim cover the full final
//!   state of depth-2 stencils like wave.
//!
//! These functions were born inside the replay harness; they live here so the
//! wire client, the live server's tests and the replay harness cannot drift
//! apart.

use pochoir_core::boundary::Boundary;
use pochoir_core::grid::PochoirArray;

use crate::{heat, life, wave};

/// Element types the traffic digest can see through.  Floats hash their IEEE
/// bit patterns, so "equal digest" means bitwise-equal grids, not
/// approximately-equal.
pub trait DigestBits: Copy {
    /// The element's canonical 64-bit pattern (IEEE bits for floats).
    fn digest_bits(self) -> u64;
}

impl DigestBits for f64 {
    fn digest_bits(self) -> u64 {
        self.to_bits()
    }
}

impl DigestBits for u8 {
    fn digest_bits(self) -> u64 {
        u64::from(self)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut hash: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a over flat value slices, in order — the digest a network client folds
/// over the two result slices a fetch returns.  [`digest_grid`] is this same
/// fold over a grid's final two snapshots, so a client-side digest of fetched
/// bytes equals a server-side digest of the drained grid.
pub fn digest_values<T: DigestBits>(slices: &[Vec<T>]) -> u64 {
    let mut hash = FNV_OFFSET;
    for slice in slices {
        for v in slice {
            hash = fnv_fold(hash, v.digest_bits());
        }
    }
    hash
}

/// FNV-1a over the final two time slices of a drained grid (`t1 - 1` then `t1`) —
/// both slices of the cyclic buffer are live results for depth-2 stencils like
/// wave, and hashing both makes the bitwise claim cover the full final state.
pub fn digest_grid<T: DigestBits, const D: usize>(grid: &PochoirArray<T, D>, t1: i64) -> u64 {
    let slices = [grid.snapshot((t1 - 1).max(0)), grid.snapshot(t1)];
    digest_values(&slices)
}

/// Deterministic tenant grid for a heat geometry: the shared smooth-bump initial
/// condition plus a per-tenant hot spot.
pub fn heat_grid<const D: usize>(sizes: [usize; D], tenant: u32) -> PochoirArray<f64, D> {
    let mut a = heat::build(sizes, Boundary::Periodic);
    let mut spot = [0i64; D];
    for d in 0..D {
        spot[d] = i64::from(tenant) % sizes[d] as i64;
    }
    a.set(0, spot, 100.0 + f64::from(tenant));
    a
}

/// Deterministic tenant grid for a life geometry: the shared random soup, with
/// the tenant id folded into the fill seed.
pub fn life_grid(sizes: [usize; 2], tenant: u32) -> PochoirArray<u8, 2> {
    life::build(sizes, 300 + u64::from(tenant))
}

/// Deterministic wave grid: the shared centred pulse plus a per-tenant bump on
/// both time slices (the pulse starts at rest, so both slices carry it).
pub fn wave_grid(sizes: [usize; 3], tenant: u32) -> PochoirArray<f64, 3> {
    let mut a = wave::build(sizes);
    let spot = [
        i64::from(tenant) % sizes[0] as i64,
        i64::from(tenant) % sizes[1] as i64,
        i64::from(tenant) % sizes[2] as i64,
    ];
    let v = 1.5 + f64::from(tenant) * 0.25;
    a.set(0, spot, v);
    a.set(1, spot, v);
    a
}

/// Converts a trace geometry (`u64` extents) into the `[usize; D]` form the
/// serve presets take.  Panics if the geometry has fewer than `D` extents.
pub fn usizes<const D: usize>(geometry: &[u64]) -> [usize; D] {
    let mut sizes = [0usize; D];
    for (d, &g) in geometry.iter().enumerate().take(D) {
        sizes[d] = g as usize;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive_and_bitwise() {
        let a = digest_values(&[vec![1.0f64, 2.0]]);
        let b = digest_values(&[vec![2.0f64, 1.0]]);
        assert_ne!(a, b);
        // -0.0 == 0.0 numerically but differs bitwise; the digest must see that.
        assert_ne!(
            digest_values(&[vec![0.0f64]]),
            digest_values(&[vec![-0.0f64]])
        );
    }

    #[test]
    fn grid_digest_equals_value_digest_of_snapshots() {
        let g = heat_grid([6, 5], 3);
        let slices = [g.snapshot(0), g.snapshot(0)];
        assert_eq!(digest_grid(&g, 0), digest_values(&slices));
    }

    #[test]
    fn tenant_grids_are_reproducible() {
        let a = heat_grid([8, 8], 5);
        let b = heat_grid([8, 8], 5);
        assert_eq!(a.snapshot(0), b.snapshot(0));
        let c = heat_grid([8, 8], 6);
        assert_ne!(a.snapshot(0), c.snapshot(0));
        assert_eq!(
            life_grid([6, 6], 2).snapshot(0),
            life_grid([6, 6], 2).snapshot(0)
        );
        assert_eq!(
            wave_grid([4, 4, 4], 1).snapshot(1),
            wave_grid([4, 4, 4], 1).snapshot(1)
        );
    }
}
