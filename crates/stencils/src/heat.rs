//! The heat equation (Jacobi update) in 1–4 spatial dimensions — the `Heat 2`, `Heat 2p`
//! and `Heat 4` rows of the paper's Figure 3, and the running example of its Figure 6.

use pochoir_core::prelude::*;

/// Jacobi-style heat kernel in `D` dimensions:
/// `u(t+1,x) = u(t,x) + Σ_d α·(u(t,x−e_d) + u(t,x+e_d) − 2·u(t,x))`.
#[derive(Clone, Copy, Debug)]
pub struct HeatKernel<const D: usize> {
    /// Diffusion coefficient `α·Δt/Δx²` applied along every axis.
    pub alpha: f64,
}

impl<const D: usize> Default for HeatKernel<D> {
    fn default() -> Self {
        // Stable explicit scheme requires alpha*2*D <= 1.
        HeatKernel {
            alpha: 0.4 / D as f64,
        }
    }
}

impl<const D: usize> StencilKernel<f64, D> for HeatKernel<D> {
    #[inline]
    fn update<A: GridAccess<f64, D>>(&self, g: &A, t: i64, x: [i64; D]) {
        let c = g.get(t, x);
        let mut acc = c;
        for d in 0..D {
            let mut lo = x;
            lo[d] -= 1;
            let mut hi = x;
            hi[d] += 1;
            acc += self.alpha * (g.get(t, lo) + g.get(t, hi) - 2.0 * c);
        }
        g.set(t + 1, x, acc);
    }
}

/// The stencil shape of [`HeatKernel`]: the (2D+1)-point star of radius 1.
pub fn shape<const D: usize>() -> Shape<D> {
    star_shape::<D>(1)
}

/// Builds an initialized heat array: a smooth bump plus deterministic pseudo-random
/// noise, with the requested boundary condition.
pub fn build<const D: usize>(sizes: [usize; D], boundary: Boundary<f64, D>) -> PochoirArray<f64, D> {
    let mut a = PochoirArray::new(sizes);
    a.register_boundary(boundary);
    a.fill_time_slice(0, |x| init_value(sizes, x));
    a
}

/// Deterministic initial condition used by every heat benchmark and test.
pub fn init_value<const D: usize>(sizes: [usize; D], x: [i64; D]) -> f64 {
    let mut v = 0.0;
    let mut h = 0u64;
    for d in 0..D {
        let f = x[d] as f64 / sizes[d] as f64;
        v += (std::f64::consts::PI * f).sin();
        h = h
            .wrapping_mul(6364136223846793005)
            .wrapping_add(x[d] as u64 + 1);
    }
    v + (h % 997) as f64 / 997.0
}

/// Reference implementation: a plain double-buffered loop nest with out-of-domain reads
/// resolved through the same boundary object.  Deliberately shares no code with the
/// engines.
pub fn reference<const D: usize>(
    sizes: [usize; D],
    boundary: &Boundary<f64, D>,
    alpha: f64,
    steps: i64,
) -> Vec<f64> {
    let sizes_i: [i64; D] = {
        let mut s = [0i64; D];
        for d in 0..D {
            s[d] = sizes[d] as i64;
        }
        s
    };
    let len: usize = sizes.iter().product();
    let index = |x: [i64; D]| -> usize {
        let mut off = 0usize;
        for d in 0..D {
            off = off * sizes[d] + x[d] as usize;
        }
        off
    };
    let mut prev: Vec<f64> = vec![0.0; len];
    for x in SpaceIter::new(sizes_i) {
        prev[index(x)] = init_value(sizes, x);
    }
    let mut next = prev.clone();
    for _ in 0..steps {
        let read = |_t: i64, x: [i64; D]| prev[index(x)];
        for x in SpaceIter::new(sizes_i) {
            let at = |p: [i64; D]| -> f64 {
                if (0..D).all(|d| p[d] >= 0 && p[d] < sizes_i[d]) {
                    prev[index(p)]
                } else {
                    boundary.resolve(&read, sizes_i, 0, p)
                }
            };
            let c = prev[index(x)];
            let mut acc = c;
            for d in 0..D {
                let mut lo = x;
                lo[d] -= 1;
                let mut hi = x;
                hi[d] += 1;
                acc += alpha * (at(lo) + at(hi) - 2.0 * c);
            }
            next[index(x)] = acc;
        }
        std::mem::swap(&mut prev, &mut next);
    }
    prev
}

/// The paper's Figure 3 problem sizes for the heat benchmarks.
pub mod paper_sizes {
    /// Heat 2 / Heat 2p: 16,000² for 500 steps.
    pub const HEAT_2D: ([usize; 2], i64) = ([16_000, 16_000], 500);
    /// Heat 4: 150⁴ for 100 steps.
    pub const HEAT_4D: ([usize; 4], i64) = ([150, 150, 150, 150], 100);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pochoir_core::engine::{run, Coarsening, ExecutionPlan};
    use pochoir_runtime::Serial;

    fn check_against_reference<const D: usize>(sizes: [usize; D], steps: i64, boundary: Boundary<f64, D>) {
        let kernel = HeatKernel::<D>::default();
        let reference = reference(sizes, &boundary, kernel.alpha, steps);
        let spec = StencilSpec::new(shape::<D>());
        let mut a = build(sizes, boundary);
        let plan = ExecutionPlan::trap().with_coarsening(Coarsening::new(2, [4; D]));
        run(&mut a, &spec, &kernel, 0, steps, &plan, &Serial);
        let got = a.snapshot(steps);
        assert_eq!(got.len(), reference.len());
        for (i, (g, r)) in got.iter().zip(reference.iter()).enumerate() {
            assert!((g - r).abs() < 1e-9, "mismatch at {i}: {g} vs {r}");
        }
    }

    #[test]
    fn heat_1d_matches_reference() {
        check_against_reference([40], 12, Boundary::Constant(0.0));
    }

    #[test]
    fn heat_2d_periodic_matches_reference() {
        check_against_reference([20, 24], 8, Boundary::Periodic);
    }

    #[test]
    fn heat_2d_dirichlet_matches_reference() {
        check_against_reference([18, 18], 6, Boundary::Constant(1.0));
    }

    #[test]
    fn heat_3d_matches_reference() {
        check_against_reference([10, 12, 9], 5, Boundary::Clamp);
    }

    #[test]
    fn heat_4d_matches_reference() {
        check_against_reference([6, 6, 6, 6], 4, Boundary::Periodic);
    }

    #[test]
    fn default_coefficients_are_stable() {
        assert!(HeatKernel::<1>::default().alpha * 2.0 <= 1.0);
        assert!(HeatKernel::<4>::default().alpha * 8.0 <= 1.0);
    }

    #[test]
    fn shape_matches_kernel_reach() {
        let s = shape::<3>();
        assert_eq!(s.slopes(), [1, 1, 1]);
        assert_eq!(s.depth(), 1);
        assert_eq!(s.cells().len(), 2 + 6);
    }

    #[test]
    fn heat_diffusion_smooths_peaks() {
        // Physical sanity: with a constant-0 boundary the total "energy" (max value)
        // decreases over time.
        let sizes = [32usize, 32];
        let boundary = Boundary::Constant(0.0);
        let kernel = HeatKernel::<2>::default();
        let spec = StencilSpec::new(shape::<2>());
        let mut a = build(sizes, boundary);
        let max0 = a.snapshot(0).iter().cloned().fold(f64::MIN, f64::max);
        run(&mut a, &spec, &kernel, 0, 30, &ExecutionPlan::trap(), &Serial);
        let max_t = a.snapshot(30).iter().cloned().fold(f64::MIN, f64::max);
        assert!(max_t < max0);
    }
}
