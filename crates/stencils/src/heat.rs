//! The heat equation (Jacobi update) in 1–4 spatial dimensions — the `Heat 2`, `Heat 2p`
//! and `Heat 4` rows of the paper's Figure 3, and the running example of its Figure 6.

use pochoir_core::prelude::*;

/// Jacobi-style heat kernel in `D` dimensions:
/// `u(t+1,x) = u(t,x) + Σ_d α·(u(t,x−e_d) + u(t,x+e_d) − 2·u(t,x))`.
#[derive(Clone, Copy, Debug)]
pub struct HeatKernel<const D: usize> {
    /// Diffusion coefficient `α·Δt/Δx²` applied along every axis.
    pub alpha: f64,
}

impl<const D: usize> Default for HeatKernel<D> {
    fn default() -> Self {
        // Stable explicit scheme requires alpha*2*D <= 1.
        HeatKernel {
            alpha: 0.4 / D as f64,
        }
    }
}

impl<const D: usize> StencilKernel<f64, D> for HeatKernel<D> {
    #[inline]
    fn update<A: GridAccess<f64, D>>(&self, g: &A, t: i64, x: [i64; D]) {
        let c = g.get(t, x);
        let mut acc = c;
        for d in 0..D {
            let mut lo = x;
            lo[d] -= 1;
            let mut hi = x;
            hi[d] += 1;
            acc += self.alpha * (g.get(t, lo) + g.get(t, hi) - 2.0 * c);
        }
        g.set(t + 1, x, acc);
    }

    /// Row-oriented interior clone: one address resolution per stencil leg per row, then
    /// a vectorizable slice-walking inner loop.  Computes the exact same floating-point
    /// expression in the same order as [`HeatKernel::update`], so results are bitwise
    /// identical; falls back to the per-point loop on views without row access.
    fn update_row<A: GridAccess<f64, D>>(&self, g: &A, t: i64, x0: [i64; D], len: i64) {
        if len <= 0 {
            return;
        }
        let n = len as usize;
        let last = D - 1;
        'fast: {
            // Safety (row contract): the engines only dispatch interior rows, whose
            // whole radius-1 footprint is in-domain, and all reads target slice `t`
            // while the single write row lives in the distinct slice `t + 1`.
            let Some(mut out) = (unsafe { g.row_out(t + 1, x0, n) }) else {
                break 'fast;
            };
            // The unit-stride leg: the row extended one cell on each side.
            let mut center_start = x0;
            center_start[last] -= 1;
            let Some(center) = (unsafe { g.row(t, center_start, n + 2) }) else {
                break 'fast;
            };
            // One row per off-axis leg; index `last` stays unused.
            let mut lo_rows: [&[f64]; D] = [center; D];
            let mut hi_rows: [&[f64]; D] = [center; D];
            for d in 0..last {
                let mut lo = x0;
                lo[d] -= 1;
                let mut hi = x0;
                hi[d] += 1;
                match unsafe { (g.row(t, lo, n), g.row(t, hi, n)) } {
                    (Some(l), Some(h)) => {
                        lo_rows[d] = l;
                        hi_rows[d] = h;
                    }
                    _ => break 'fast,
                }
            }
            let alpha = self.alpha;
            // SIMD clone of the loop below (bitwise-equal); scalar loop when inactive.
            if !crate::simd::heat_row(
                alpha,
                center,
                &lo_rows[..last],
                &hi_rows[..last],
                &mut out,
                n,
            ) {
                for i in 0..n {
                    let c = center[i + 1];
                    let mut acc = c;
                    for d in 0..last {
                        acc += alpha * (lo_rows[d][i] + hi_rows[d][i] - 2.0 * c);
                    }
                    acc += alpha * (center[i] + center[i + 2] - 2.0 * c);
                    out.set(i, acc);
                }
            }
            return;
        }
        // Per-point path for views without direct rows (boundary clone, tracing, …).
        update_row_pointwise(self, g, t, x0, len);
    }
}

/// The stencil shape of [`HeatKernel`]: the (2D+1)-point star of radius 1.
pub fn shape<const D: usize>() -> Shape<D> {
    star_shape::<D>(1)
}

/// TRAP/STRAP base-case coarsening tuned for the 2D heat kernel under the compiled
/// schedule path (measured with `schedule_path_json`): keep the unit-stride dimension
/// uncut so the row path gets full-width rows — the compiled executor's segment-level
/// clone resolution keeps those rows on the interior clone — and slab the outer
/// dimension at 50 rows.  A persisted host tune profile (see
/// [`pochoir_autotune::profile`]) overrides this default when present.
pub fn tuned_coarsening_2d() -> Coarsening<2> {
    crate::common::profile_coarsening("heat2d", Coarsening::new(5, [50, 4096]))
}

fn tuned_plan_2d() -> ExecutionPlan<2> {
    crate::common::tuned_plan("heat2d", tuned_coarsening_2d())
}

/// A reusable executor session for the 2D heat kernel: TRAP on the compiled-schedule
/// path with the tuned coarsening preset, pre-compiled for time windows of height
/// `window` on grids of extent `sizes`.  Hold one per geometry and call
/// [`run`](CompiledStencil::run) once per window; repeated windows replay the pinned
/// schedule with zero compilations.
pub fn session_2d(sizes: [usize; 2], window: i64) -> CompiledStencil<f64, HeatKernel<2>, 2> {
    CompiledStencil::new(
        StencilSpec::new(shape::<2>()),
        HeatKernel::<2>::default(),
        tuned_plan_2d(),
        sizes,
        window,
    )
}

/// A serving preset for the 2D heat kernel: a [`StencilServer`] over the tuned TRAP
/// plan whose program is fetched from the process-global session registry — every
/// server (and every `Pochoir` object) of this geometry shares one compiled schedule.
/// Submit many same-extent grids (optionally with per-tenant weights and deadlines via
/// `submit_with`), then `drain()` to run them as a pipelined multi-tenant workload in
/// windows of `window` steps.
///
/// ```
/// use pochoir_core::boundary::Boundary;
/// use pochoir_stencils::heat;
///
/// let mut server = heat::serve_2d([24, 24], 4);
/// for tenant in 0..3 {
///     let mut grid = heat::build([24, 24], Boundary::Periodic);
///     grid.set(0, [tenant, tenant], 100.0);
///     server.submit(grid, 0, 8); // two 4-step windows each
/// }
/// let grids = server.drain(); // ticket order, windows pipelined across tenants
/// assert_eq!(grids.len(), 3);
/// assert_eq!(server.last_drain().unwrap().windows, 6);
/// ```
pub fn serve_2d(sizes: [usize; 2], window: i64) -> StencilServer<f64, HeatKernel<2>, 2> {
    StencilServer::new(
        StencilSpec::new(shape::<2>()),
        HeatKernel::<2>::default(),
        tuned_plan_2d(),
        sizes,
        window,
    )
}

/// Fallible variant of [`serve_2d`]: invalid geometry (or a quarantined / compile-failed
/// registry key) comes back as a typed [`ServeError`] instead of a panic — the right
/// entry point when geometry arrives from a request rather than from test code.
///
/// ```
/// use pochoir_stencils::heat;
///
/// assert!(heat::try_serve_2d([24, 24], 4).is_ok());
/// assert!(heat::try_serve_2d([0, 24], 4).is_err()); // zero extent: typed, not a panic
/// ```
pub fn try_serve_2d(
    sizes: [usize; 2],
    window: i64,
) -> Result<StencilServer<f64, HeatKernel<2>, 2>, ServeError> {
    StencilServer::try_new(
        StencilSpec::new(shape::<2>()),
        HeatKernel::<2>::default(),
        tuned_plan_2d(),
        sizes,
        window,
    )
}

/// A serving preset for giant 1D heat grids — extents that fail `should_compile`
/// uncoarsened and therefore take the sharded route (see `docs/sharding.md`): an
/// intentionally uncoarsened TRAP plan with `Sharding::Auto`, so
/// [`submit_sharded`](StencilServer::submit_sharded) scatters each submission into
/// halo-exchanged compiled tile chains that the drain schedules as one tenant group.
///
/// ```
/// use pochoir_core::boundary::Boundary;
/// use pochoir_core::engine::TicketOutcome;
/// use pochoir_stencils::heat;
///
/// let mut server = heat::serve_giant_1d(600_000, 4);
/// let mut grid = heat::build([600_000], Boundary::Periodic);
/// grid.set(0, [300_000], 100.0);
/// let lead = server.submit_sharded(grid, 0, 8, Default::default());
/// let results = server.drain(); // tile chains + exchange barriers, pipelined
/// let report = server.last_drain().unwrap();
/// assert!(report.outcomes.iter().all(|o| matches!(o, TicketOutcome::Completed)));
/// assert_eq!(results[lead].snapshot(8).len(), 600_000); // the reassembled giant
/// ```
pub fn serve_giant_1d(n: usize, window: i64) -> StencilServer<f64, HeatKernel<1>, 1> {
    StencilServer::new(
        StencilSpec::new(shape::<1>()),
        HeatKernel::<1>::default(),
        ExecutionPlan::trap().with_coarsening(Coarsening::none()),
        [n],
        window,
    )
}

/// Builds an initialized heat array: a smooth bump plus deterministic pseudo-random
/// noise, with the requested boundary condition.
pub fn build<const D: usize>(
    sizes: [usize; D],
    boundary: Boundary<f64, D>,
) -> PochoirArray<f64, D> {
    let mut a = PochoirArray::new(sizes);
    a.register_boundary(boundary);
    a.fill_time_slice(0, |x| init_value(sizes, x));
    a
}

/// Deterministic initial condition used by every heat benchmark and test.
pub fn init_value<const D: usize>(sizes: [usize; D], x: [i64; D]) -> f64 {
    let mut v = 0.0;
    let mut h = 0u64;
    for d in 0..D {
        let f = x[d] as f64 / sizes[d] as f64;
        v += (std::f64::consts::PI * f).sin();
        h = h
            .wrapping_mul(6364136223846793005)
            .wrapping_add(x[d] as u64 + 1);
    }
    v + (h % 997) as f64 / 997.0
}

/// Reference implementation: a plain double-buffered loop nest with out-of-domain reads
/// resolved through the same boundary object.  Deliberately shares no code with the
/// engines.
pub fn reference<const D: usize>(
    sizes: [usize; D],
    boundary: &Boundary<f64, D>,
    alpha: f64,
    steps: i64,
) -> Vec<f64> {
    let sizes_i: [i64; D] = {
        let mut s = [0i64; D];
        for d in 0..D {
            s[d] = sizes[d] as i64;
        }
        s
    };
    let len: usize = sizes.iter().product();
    let index = |x: [i64; D]| -> usize {
        let mut off = 0usize;
        for d in 0..D {
            off = off * sizes[d] + x[d] as usize;
        }
        off
    };
    let mut prev: Vec<f64> = vec![0.0; len];
    for x in SpaceIter::new(sizes_i) {
        prev[index(x)] = init_value(sizes, x);
    }
    let mut next = prev.clone();
    for _ in 0..steps {
        let read = |_t: i64, x: [i64; D]| prev[index(x)];
        for x in SpaceIter::new(sizes_i) {
            let at = |p: [i64; D]| -> f64 {
                if (0..D).all(|d| p[d] >= 0 && p[d] < sizes_i[d]) {
                    prev[index(p)]
                } else {
                    boundary.resolve(&read, sizes_i, 0, p)
                }
            };
            let c = prev[index(x)];
            let mut acc = c;
            for d in 0..D {
                let mut lo = x;
                lo[d] -= 1;
                let mut hi = x;
                hi[d] += 1;
                acc += alpha * (at(lo) + at(hi) - 2.0 * c);
            }
            next[index(x)] = acc;
        }
        std::mem::swap(&mut prev, &mut next);
    }
    prev
}

/// The paper's Figure 3 problem sizes for the heat benchmarks.
pub mod paper_sizes {
    /// Heat 2 / Heat 2p: 16,000² for 500 steps.
    pub const HEAT_2D: ([usize; 2], i64) = ([16_000, 16_000], 500);
    /// Heat 4: 150⁴ for 100 steps.
    pub const HEAT_4D: ([usize; 4], i64) = ([150, 150, 150, 150], 100);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pochoir_core::engine::{run, Coarsening, ExecutionPlan};
    use pochoir_runtime::Serial;

    fn check_against_reference<const D: usize>(
        sizes: [usize; D],
        steps: i64,
        boundary: Boundary<f64, D>,
    ) {
        let kernel = HeatKernel::<D>::default();
        let reference = reference(sizes, &boundary, kernel.alpha, steps);
        let spec = StencilSpec::new(shape::<D>());
        let mut a = build(sizes, boundary);
        let plan = ExecutionPlan::trap().with_coarsening(Coarsening::new(2, [4; D]));
        run(&mut a, &spec, &kernel, 0, steps, &plan, &Serial);
        let got = a.snapshot(steps);
        assert_eq!(got.len(), reference.len());
        for (i, (g, r)) in got.iter().zip(reference.iter()).enumerate() {
            assert!((g - r).abs() < 1e-9, "mismatch at {i}: {g} vs {r}");
        }
    }

    #[test]
    fn heat_1d_matches_reference() {
        check_against_reference([40], 12, Boundary::Constant(0.0));
    }

    #[test]
    fn heat_2d_periodic_matches_reference() {
        check_against_reference([20, 24], 8, Boundary::Periodic);
    }

    #[test]
    fn heat_2d_dirichlet_matches_reference() {
        check_against_reference([18, 18], 6, Boundary::Constant(1.0));
    }

    #[test]
    fn heat_3d_matches_reference() {
        check_against_reference([10, 12, 9], 5, Boundary::Clamp);
    }

    #[test]
    fn heat_4d_matches_reference() {
        check_against_reference([6, 6, 6, 6], 4, Boundary::Periodic);
    }

    #[test]
    fn row_and_point_base_cases_are_bitwise_identical() {
        use pochoir_core::engine::{BaseCase, EngineKind};
        let kernel = HeatKernel::<2>::default();
        let spec = StencilSpec::new(shape::<2>());
        for engine in [EngineKind::Trap, EngineKind::Strap, EngineKind::LoopsSerial] {
            for boundary in [Boundary::Constant(0.0), Boundary::Periodic, Boundary::Clamp] {
                let mut snaps = Vec::new();
                for base_case in [BaseCase::Row, BaseCase::Point] {
                    let mut a = build([21, 19], boundary.clone());
                    let plan = ExecutionPlan::new(engine)
                        .with_coarsening(Coarsening::new(2, [5, 5]))
                        .with_base_case(base_case);
                    run(&mut a, &spec, &kernel, 0, 7, &plan, &Serial);
                    snaps.push(a.snapshot(7));
                }
                assert_eq!(snaps[0], snaps[1], "{engine:?} {boundary:?}");
            }
        }
    }

    #[test]
    fn update_row_with_nonpositive_len_touches_nothing() {
        // Like the default per-point path, the row override must treat len <= 0 as
        // empty rather than casting it to a huge usize; no grid access may happen.
        struct PanicView;
        impl GridAccess<f64, 2> for PanicView {
            fn get(&self, _t: i64, _x: [i64; 2]) -> f64 {
                panic!("no access expected for empty rows")
            }
            fn set(&self, _t: i64, _x: [i64; 2], _value: f64) {
                panic!("no access expected for empty rows")
            }
            fn size(&self, _dim: usize) -> i64 {
                8
            }
        }
        let kernel = HeatKernel::<2>::default();
        kernel.update_row(&PanicView, 0, [2, 2], 0);
        kernel.update_row(&PanicView, 0, [2, 2], -5);
    }

    #[test]
    fn default_coefficients_are_stable() {
        assert!(HeatKernel::<1>::default().alpha * 2.0 <= 1.0);
        assert!(HeatKernel::<4>::default().alpha * 8.0 <= 1.0);
    }

    #[test]
    fn shape_matches_kernel_reach() {
        let s = shape::<3>();
        assert_eq!(s.slopes(), [1, 1, 1]);
        assert_eq!(s.depth(), 1);
        assert_eq!(s.cells().len(), 2 + 6);
    }

    #[test]
    fn heat_diffusion_smooths_peaks() {
        // Physical sanity: with a constant-0 boundary the total "energy" (max value)
        // decreases over time.
        let sizes = [32usize, 32];
        let boundary = Boundary::Constant(0.0);
        let kernel = HeatKernel::<2>::default();
        let spec = StencilSpec::new(shape::<2>());
        let mut a = build(sizes, boundary);
        let max0 = a.snapshot(0).iter().cloned().fold(f64::MIN, f64::max);
        run(
            &mut a,
            &spec,
            &kernel,
            0,
            30,
            &ExecutionPlan::trap(),
            &Serial,
        );
        let max_t = a.snapshot(30).iter().cloned().fold(f64::MIN, f64::max);
        assert!(max_t < max0);
    }
}
