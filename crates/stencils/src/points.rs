//! The 3D 7-point and 27-point stencils used for the Berkeley-autotuner comparison of the
//! paper's Figure 5 (8 and 30 floating-point operations per grid point respectively).

use pochoir_core::prelude::*;

/// The 7-point stencil of Figure 5: `u' = α·u + β·Σ(6 face neighbours)` — 8 flops/point.
#[derive(Clone, Copy, Debug)]
pub struct SevenPointKernel {
    /// Centre weight.
    pub alpha: f64,
    /// Face-neighbour weight.
    pub beta: f64,
}

impl Default for SevenPointKernel {
    fn default() -> Self {
        SevenPointKernel {
            alpha: 0.4,
            beta: 0.1,
        }
    }
}

impl StencilKernel<f64, 3> for SevenPointKernel {
    #[inline]
    fn update<A: GridAccess<f64, 3>>(&self, g: &A, t: i64, x: [i64; 3]) {
        let [i, j, k] = x;
        let sum = g.get(t, [i - 1, j, k])
            + g.get(t, [i + 1, j, k])
            + g.get(t, [i, j - 1, k])
            + g.get(t, [i, j + 1, k])
            + g.get(t, [i, j, k - 1])
            + g.get(t, [i, j, k + 1]);
        g.set(t + 1, x, self.alpha * g.get(t, x) + self.beta * sum);
    }
}

/// Number of floating-point operations per point for the 7-point kernel (paper: 8).
pub const SEVEN_POINT_FLOPS: u64 = 8;

/// The 27-point stencil of Figure 5: distinct weights for the centre, the 6 faces, the
/// 12 edges and the 8 corners — 30 flops/point.
#[derive(Clone, Copy, Debug)]
pub struct TwentySevenPointKernel {
    /// Centre weight.
    pub alpha: f64,
    /// Face weight.
    pub beta: f64,
    /// Edge weight.
    pub gamma: f64,
    /// Corner weight.
    pub delta: f64,
}

impl Default for TwentySevenPointKernel {
    fn default() -> Self {
        TwentySevenPointKernel {
            alpha: 0.25,
            beta: 0.06,
            gamma: 0.02,
            delta: 0.005,
        }
    }
}

impl StencilKernel<f64, 3> for TwentySevenPointKernel {
    #[inline]
    fn update<A: GridAccess<f64, 3>>(&self, g: &A, t: i64, x: [i64; 3]) {
        let mut faces = 0.0;
        let mut edges = 0.0;
        let mut corners = 0.0;
        for di in -1i64..=1 {
            for dj in -1i64..=1 {
                for dk in -1i64..=1 {
                    let manhattan = di.abs() + dj.abs() + dk.abs();
                    if manhattan == 0 {
                        continue;
                    }
                    let v = g.get(t, [x[0] + di, x[1] + dj, x[2] + dk]);
                    match manhattan {
                        1 => faces += v,
                        2 => edges += v,
                        _ => corners += v,
                    }
                }
            }
        }
        let v = self.alpha * g.get(t, x)
            + self.beta * faces
            + self.gamma * edges
            + self.delta * corners;
        g.set(t + 1, x, v);
    }
}

/// Number of floating-point operations per point for the 27-point kernel (paper: 30).
pub const TWENTY_SEVEN_POINT_FLOPS: u64 = 30;

/// The 7-point shape (radius-1 star).
pub fn seven_point_shape() -> Shape<3> {
    star_shape::<3>(1)
}

/// The 27-point shape (radius-1 box).
pub fn twenty_seven_point_shape() -> Shape<3> {
    box_shape::<3>(1)
}

/// Builds the ghost-cell style array used for Figure 5: constant-zero boundary (ghost
/// cells in the paper's baselines) and a deterministic pseudo-random interior.
pub fn build(sizes: [usize; 3]) -> PochoirArray<f64, 3> {
    let mut a = PochoirArray::new(sizes);
    a.register_boundary(Boundary::Constant(0.0));
    a.fill_time_slice(0, |x| {
        let h = (x[0] as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((x[1] as u64).wrapping_mul(0xC2B2AE3D27D4EB4F))
            .wrapping_add(x[2] as u64);
        (h % 1024) as f64 / 1024.0
    });
    a
}

/// The Berkeley comparison grid: 258³ including ghost cells, i.e. a 256³ computed volume;
/// the paper runs Pochoir for 200 time steps.
pub const PAPER_SIZE: ([usize; 3], i64) = ([256, 256, 256], 200);

/// Stencil throughput in GStencil/s (the unit of Figure 5) for `points` grid points
/// advanced `steps` times in `seconds`.
pub fn gstencils_per_second(points: u128, steps: i64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    points as f64 * steps as f64 / seconds / 1e9
}

/// GFLOP/s given a per-point flop count (8 or 30 in Figure 5).
pub fn gflops_per_second(points: u128, steps: i64, flops_per_point: u64, seconds: f64) -> f64 {
    gstencils_per_second(points, steps, seconds) * flops_per_point as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pochoir_core::engine::{run, Coarsening, EngineKind, ExecutionPlan};
    use pochoir_runtime::Serial;

    fn reference_7pt(sizes: [usize; 3], k: &SevenPointKernel, steps: i64) -> Vec<f64> {
        let mut a = build(sizes);
        let spec = StencilSpec::new(seven_point_shape());
        run(
            &mut a,
            &spec,
            k,
            0,
            steps,
            &ExecutionPlan::loops_serial(),
            &Serial,
        );
        a.snapshot(steps)
    }

    #[test]
    fn seven_point_trap_matches_loops() {
        let sizes = [12usize, 10, 14];
        let steps = 5;
        let k = SevenPointKernel::default();
        let expected = reference_7pt(sizes, &k, steps);
        let spec = StencilSpec::new(seven_point_shape());
        let mut a = build(sizes);
        let plan = ExecutionPlan::trap().with_coarsening(Coarsening::new(2, [3, 3, 6]));
        run(&mut a, &spec, &k, 0, steps, &plan, &Serial);
        assert_eq!(a.snapshot(steps), expected);
    }

    #[test]
    fn twenty_seven_point_engines_agree() {
        let sizes = [9usize, 9, 9];
        let steps = 4;
        let k = TwentySevenPointKernel::default();
        let spec = StencilSpec::new(twenty_seven_point_shape());
        let mut reference = build(sizes);
        run(
            &mut reference,
            &spec,
            &k,
            0,
            steps,
            &ExecutionPlan::loops_serial(),
            &Serial,
        );
        for engine in [
            EngineKind::Trap,
            EngineKind::Strap,
            EngineKind::LoopsBlocked,
        ] {
            let mut a = build(sizes);
            let plan = ExecutionPlan::new(engine).with_coarsening(Coarsening::new(2, [3, 3, 3]));
            run(&mut a, &spec, &k, 0, steps, &plan, &Serial);
            assert_eq!(a.snapshot(steps), reference.snapshot(steps), "{engine:?}");
        }
    }

    #[test]
    fn shapes_have_expected_cell_counts() {
        assert_eq!(seven_point_shape().cells().len(), 8);
        assert_eq!(twenty_seven_point_shape().cells().len(), 28);
    }

    #[test]
    fn throughput_units() {
        // 2.0 GStencil/s at 8 flops/point is 16 GFLOP/s (Figure 5's arithmetic).
        let points = 1_000_000_000u128;
        let secs = 0.5;
        assert!((gstencils_per_second(points, 1, secs) - 2.0).abs() < 1e-12);
        assert!((gflops_per_second(points, 1, 8, secs) - 16.0).abs() < 1e-12);
        assert_eq!(gstencils_per_second(points, 1, 0.0), 0.0);
    }
}
