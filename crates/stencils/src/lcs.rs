//! Longest common subsequence — the `LCS` row of the paper's Figure 3.
//!
//! The classical LCS dynamic program `L[i][j] = f(L[i−1][j], L[i][j−1], L[i−1][j−1])` is
//! turned into a **1-dimensional stencil of depth 2** by skewing: the "time" dimension is
//! the anti-diagonal `τ = i + j` and the spatial coordinate is `j`.  At time `τ`, position
//! `j` holds `L[τ−j][j]`.  This is exactly how the paper's 1D DP benchmarks (PSA, LCS,
//! APOP) are expressed: a 100,000-point spatial grid stepped ~2·100,000 times, with a
//! kernel full of branch conditionals for the diamond-shaped domain.

use pochoir_core::prelude::*;
use std::sync::Arc;

/// The skewed LCS kernel.  Holds the two sequences being compared.
#[derive(Clone, Debug)]
pub struct LcsKernel {
    /// First sequence (length `M`, indexed by the DP row `i`).
    pub a: Arc<Vec<u8>>,
    /// Second sequence (length `N`, indexed by the DP column `j`).
    pub b: Arc<Vec<u8>>,
}

impl StencilKernel<i32, 1> for LcsKernel {
    #[inline]
    fn update<A: GridAccess<i32, 1>>(&self, g: &A, t: i64, x: [i64; 1]) {
        let j = x[0];
        let m = self.a.len() as i64;
        let n = self.b.len() as i64;
        // The cell being produced lives on anti-diagonal τ = t + 1 and is L[i][j].
        let i = (t + 1) - j;
        let value = if i <= 0 || i > m || j == 0 || j > n {
            0 // outside the DP table, or its neutral first row / column
        } else if self.a[(i - 1) as usize] == self.b[(j - 1) as usize] {
            g.get(t - 1, [j - 1]) + 1 // L[i-1][j-1] + 1
        } else {
            g.get(t, [j]).max(g.get(t, [j - 1])) // max(L[i-1][j], L[i][j-1])
        };
        g.set(t + 1, [j], value);
    }
}

/// The skewed LCS shape: `{(1,0), (0,0), (0,−1), (−1,−1)}` — depth 2, slope 1.
pub fn shape() -> Shape<1> {
    Shape::must(vec![
        ShapeCell::new(1, [0]),
        ShapeCell::new(0, [0]),
        ShapeCell::new(0, [-1]),
        ShapeCell::new(-1, [-1]),
    ])
}

/// Builds the spatial array (positions `j = 0..=N`) with the first two anti-diagonals
/// (all zeros for LCS) initialized, and a constant-0 boundary for `j = −1` reads.
pub fn build(b_len: usize) -> PochoirArray<i32, 1> {
    let mut arr = PochoirArray::with_depth([b_len + 1], 2);
    arr.register_boundary(Boundary::Constant(0));
    arr
}

/// Number of kernel steps needed to fill the whole table for sequences of lengths `m`, `n`
/// (anti-diagonals 2 ..= m+n, one per step).
pub fn steps(m: usize, n: usize) -> i64 {
    (m + n) as i64 - 1
}

/// Reads the final answer `L[m][n]` out of the array after [`steps`] steps have run.
pub fn result(arr: &PochoirArray<i32, 1>, m: usize, n: usize) -> i32 {
    arr.get((m + n) as i64, [n as i64])
}

/// Deterministic pseudo-random sequence over a small alphabet.
pub fn random_sequence(len: usize, alphabet: u8, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % alphabet as u64) as u8
        })
        .collect()
}

/// Reference implementation: the classical quadratic-space LCS table.
pub fn reference(a: &[u8], b: &[u8]) -> i32 {
    let m = a.len();
    let n = b.len();
    let mut table = vec![0i32; (m + 1) * (n + 1)];
    let idx = |i: usize, j: usize| i * (n + 1) + j;
    for i in 1..=m {
        for j in 1..=n {
            table[idx(i, j)] = if a[i - 1] == b[j - 1] {
                table[idx(i - 1, j - 1)] + 1
            } else {
                table[idx(i - 1, j)].max(table[idx(i, j - 1)])
            };
        }
    }
    table[idx(m, n)]
}

/// The paper's Figure 3 problem size: 100,000-long sequences, 200,000 steps.
pub const PAPER_SIZE: (usize, usize) = (100_000, 100_000);

/// Runs the LCS stencil end-to-end with the given plan and returns `L[m][n]`.
pub fn run_lcs<P: pochoir_runtime::Parallelism>(
    a: &[u8],
    b: &[u8],
    plan: &pochoir_core::engine::ExecutionPlan<1>,
    par: &P,
) -> i32 {
    let kernel = LcsKernel {
        a: Arc::new(a.to_vec()),
        b: Arc::new(b.to_vec()),
    };
    let spec = StencilSpec::new(shape());
    let mut arr = build(b.len());
    let t0 = spec.shape().first_step();
    pochoir_core::engine::run(
        &mut arr,
        &spec,
        &kernel,
        t0,
        t0 + steps(a.len(), b.len()),
        plan,
        par,
    );
    result(&arr, a.len(), b.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pochoir_core::engine::{Coarsening, EngineKind, ExecutionPlan};
    use pochoir_runtime::Serial;

    #[test]
    fn shape_properties() {
        let s = shape();
        assert_eq!(s.depth(), 2);
        assert_eq!(s.slopes(), [1]);
        assert_eq!(s.first_step(), 1);
    }

    #[test]
    fn known_small_cases() {
        assert_eq!(reference(b"ABCBDAB", b"BDCABA"), 4);
        assert_eq!(reference(b"", b"ABC"), 0);
        assert_eq!(reference(b"AAAA", b"AAAA"), 4);
        let got = run_lcs(b"ABCBDAB", b"BDCABA", &ExecutionPlan::trap(), &Serial);
        assert_eq!(got, 4);
    }

    #[test]
    fn stencil_matches_reference_on_random_sequences() {
        for (m, n, seed) in [(30usize, 40usize, 1u64), (57, 23, 2), (64, 64, 3)] {
            let a = random_sequence(m, 4, seed);
            let b = random_sequence(n, 4, seed + 100);
            let expected = reference(&a, &b);
            for engine in [EngineKind::Trap, EngineKind::Strap, EngineKind::LoopsSerial] {
                let plan = ExecutionPlan::new(engine).with_coarsening(Coarsening::new(4, [16]));
                let got = run_lcs(&a, &b, &plan, &Serial);
                assert_eq!(got, expected, "{engine:?} m={m} n={n}");
            }
        }
    }

    #[test]
    fn identical_sequences_have_full_length_lcs() {
        let a = random_sequence(80, 3, 9);
        let got = run_lcs(&a, &a, &ExecutionPlan::trap(), &Serial);
        assert_eq!(got, 80);
    }
}
