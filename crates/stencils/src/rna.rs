//! RNA secondary-structure prediction — the `RNA` row of the paper's Figure 3.
//!
//! The benchmark computes a Nussinov-style dynamic program: the maximum number of
//! non-crossing base pairs formed by a sequence, using the local recurrence
//! `N(i,j) = max(N(i+1,j), N(i,j−1), N(i+1,j−1) + pair(i,j))` (the composition/bifurcation
//! term of the full Nussinov algorithm is not a nearest-neighbour stencil and is omitted,
//! as in cache-oblivious DP stencil formulations).  The DP is expressed as a **2-D
//! wavefront stencil**: cell `(i,j)` becomes final on time step `τ = j − i`, and on every
//! other step it simply carries its value forward — which is why the kernel is full of
//! branch conditionals and why the paper reports only modest speedups for RNA on its
//! small 300² grid.

use pochoir_core::prelude::*;
use std::sync::Arc;

/// RNA bases.
pub const BASES: [u8; 4] = [b'A', b'C', b'G', b'U'];

/// Returns 1 if the two bases can pair (Watson–Crick plus GU wobble), else 0.
pub fn can_pair(a: u8, b: u8) -> i32 {
    matches!(
        (a, b),
        (b'A', b'U') | (b'U', b'A') | (b'C', b'G') | (b'G', b'C') | (b'G', b'U') | (b'U', b'G')
    ) as i32
}

/// The wavefront Nussinov kernel.
#[derive(Clone, Debug)]
pub struct RnaKernel {
    /// The RNA sequence.
    pub seq: Arc<Vec<u8>>,
}

impl StencilKernel<i32, 2> for RnaKernel {
    #[inline]
    fn update<A: GridAccess<i32, 2>>(&self, g: &A, t: i64, x: [i64; 2]) {
        let [i, j] = x;
        let n = self.seq.len() as i64;
        // Cells on band j − i = t + 1 are computed this step; everything else carries.
        if j - i == t + 1 && i >= 0 && j < n {
            let drop_left = g.get(t, [i + 1, j]); // N(i+1, j), final since band t
            let drop_right = g.get(t, [i, j - 1]); // N(i, j-1), final since band t
            let paired =
                g.get(t, [i + 1, j - 1]) + can_pair(self.seq[i as usize], self.seq[j as usize]); // band t-1, carried
            g.set(t + 1, x, drop_left.max(drop_right).max(paired));
        } else {
            g.set(t + 1, x, g.get(t, x));
        }
    }
}

/// The RNA shape: reads the cell itself and its `(+1,0)`, `(0,−1)`, `(+1,−1)` neighbours
/// at the previous step.
pub fn shape() -> Shape<2> {
    Shape::must(vec![
        ShapeCell::new(1, [0, 0]),
        ShapeCell::new(0, [0, 0]),
        ShapeCell::new(0, [1, 0]),
        ShapeCell::new(0, [0, -1]),
        ShapeCell::new(0, [1, -1]),
    ])
}

/// Builds the DP grid for a sequence of length `n`, zero-initialized (N(i,i) = 0 and the
/// empty lower triangle), with a constant-0 boundary.
pub fn build(n: usize) -> PochoirArray<i32, 2> {
    let mut arr = PochoirArray::new([n, n]);
    arr.register_boundary(Boundary::Constant(0));
    arr
}

/// Number of steps to complete the DP: bands 1 ..= n−1.
pub fn steps(n: usize) -> i64 {
    n as i64 - 1
}

/// Reads the final answer `N(0, n−1)` after [`steps`] steps.
pub fn result(arr: &PochoirArray<i32, 2>, n: usize) -> i32 {
    arr.get(steps(n), [0, n as i64 - 1])
}

/// Deterministic pseudo-random RNA sequence.
pub fn random_sequence(n: usize, seed: u64) -> Vec<u8> {
    crate::lcs::random_sequence(n, 4, seed)
        .into_iter()
        .map(|x| BASES[x as usize])
        .collect()
}

/// Reference implementation: band-by-band DP on a plain 2D table.
pub fn reference(seq: &[u8]) -> i32 {
    let n = seq.len();
    if n == 0 {
        return 0;
    }
    let mut table = vec![0i32; n * n];
    let idx = |i: usize, j: usize| i * n + j;
    for band in 1..n {
        for i in 0..n - band {
            let j = i + band;
            let mut best = table[idx(i + 1, j)].max(table[idx(i, j - 1)]);
            let paired = if band >= 1 {
                let inner = if i < j - 1 {
                    table[idx(i + 1, j - 1)]
                } else {
                    0
                };
                inner + can_pair(seq[i], seq[j])
            } else {
                0
            };
            best = best.max(paired);
            table[idx(i, j)] = best;
        }
    }
    table[idx(0, n - 1)]
}

/// The paper's Figure 3 problem size: a 300² grid run for 900 steps.
pub const PAPER_SIZE: (usize, i64) = (300, 900);

/// Runs the RNA stencil end-to-end and returns the optimal pair count.
pub fn run_rna<P: pochoir_runtime::Parallelism>(
    seq: &[u8],
    plan: &pochoir_core::engine::ExecutionPlan<2>,
    par: &P,
) -> i32 {
    let kernel = RnaKernel {
        seq: Arc::new(seq.to_vec()),
    };
    let spec = StencilSpec::new(shape());
    let mut arr = build(seq.len());
    let t0 = spec.shape().first_step();
    pochoir_core::engine::run(
        &mut arr,
        &spec,
        &kernel,
        t0,
        t0 + steps(seq.len()),
        plan,
        par,
    );
    result(&arr, seq.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pochoir_core::engine::{Coarsening, EngineKind, ExecutionPlan};
    use pochoir_runtime::Serial;

    #[test]
    fn pairing_rules() {
        assert_eq!(can_pair(b'A', b'U'), 1);
        assert_eq!(can_pair(b'G', b'C'), 1);
        assert_eq!(can_pair(b'G', b'U'), 1);
        assert_eq!(can_pair(b'A', b'G'), 0);
        assert_eq!(can_pair(b'C', b'U'), 0);
    }

    #[test]
    fn shape_properties() {
        let s = shape();
        assert_eq!(s.depth(), 1);
        assert_eq!(s.slopes(), [1, 1]);
    }

    #[test]
    fn hairpin_sequence_pairs_fully() {
        // GGGG AAAA CCCC: the four G's pair with the four C's.
        let seq = b"GGGGAAAACCCC".to_vec();
        assert_eq!(reference(&seq), 4);
        assert_eq!(run_rna(&seq, &ExecutionPlan::trap(), &Serial), 4);
    }

    #[test]
    fn unpairable_sequence_scores_zero() {
        let seq = b"AAAAAAA".to_vec();
        assert_eq!(reference(&seq), 0);
        assert_eq!(run_rna(&seq, &ExecutionPlan::trap(), &Serial), 0);
    }

    #[test]
    fn stencil_matches_reference_on_random_sequences() {
        for (n, seed) in [(20usize, 1u64), (33, 2), (48, 3)] {
            let seq = random_sequence(n, seed);
            let expected = reference(&seq);
            for engine in [EngineKind::Trap, EngineKind::Strap, EngineKind::LoopsSerial] {
                let plan = ExecutionPlan::new(engine).with_coarsening(Coarsening::new(3, [8, 8]));
                assert_eq!(run_rna(&seq, &plan, &Serial), expected, "{engine:?} n={n}");
            }
        }
    }
}
