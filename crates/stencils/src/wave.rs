//! The 3D finite-difference wave equation — the `Wave 3` row of the paper's Figure 3 and
//! the 3D benchmark of its Figures 9(b) and 10(b).
//!
//! The wave equation is second order in time, so its stencil has **depth 2**: the update
//! reads both the current and the previous time step, exercising the multi-slice storage
//! and the depth-aware initialization of the framework.

use pochoir_core::prelude::*;

/// Second-order finite-difference wave kernel:
/// `u(t+1) = 2u(t) − u(t−1) + c²·Σ_d (u(t,x−e_d) − 2u(t,x) + u(t,x+e_d))`.
#[derive(Clone, Copy, Debug)]
pub struct WaveKernel {
    /// Squared Courant number `c²·Δt²/Δx²` (must satisfy the CFL condition `3·c² ≤ 1`).
    pub c2: f64,
}

impl Default for WaveKernel {
    fn default() -> Self {
        WaveKernel { c2: 0.25 }
    }
}

impl StencilKernel<f64, 3> for WaveKernel {
    #[inline]
    fn update<A: GridAccess<f64, 3>>(&self, g: &A, t: i64, x: [i64; 3]) {
        let c = g.get(t, x);
        let mut lap = 0.0;
        for d in 0..3 {
            let mut lo = x;
            lo[d] -= 1;
            let mut hi = x;
            hi[d] += 1;
            lap += g.get(t, lo) - 2.0 * c + g.get(t, hi);
        }
        let prev = g.get(t - 1, x);
        g.set(t + 1, x, 2.0 * c - prev + self.c2 * lap);
    }

    /// Row-oriented interior clone: seven row addresses resolved once (six stencil legs
    /// at `t` plus the centre at `t − 1`), then a slice-walking loop computing the same
    /// floating-point expression in the same order as [`WaveKernel::update`].
    fn update_row<A: GridAccess<f64, 3>>(&self, g: &A, t: i64, x0: [i64; 3], len: i64) {
        if len <= 0 {
            return;
        }
        let n = len as usize;
        'fast: {
            // Safety (row contract): interior rows keep the radius-1 footprint
            // in-domain; reads are of slices `t` and `t − 1`, the write row of the
            // distinct slice `t + 1` (three slices for this depth-2 stencil).
            let (Some(mut out), Some(center), Some(prev)) = (unsafe {
                (
                    g.row_out(t + 1, x0, n),
                    g.row(t, [x0[0], x0[1], x0[2] - 1], n + 2),
                    g.row(t - 1, x0, n),
                )
            }) else {
                break 'fast;
            };
            let (Some(xm), Some(xp), Some(ym), Some(yp)) = (unsafe {
                (
                    g.row(t, [x0[0] - 1, x0[1], x0[2]], n),
                    g.row(t, [x0[0] + 1, x0[1], x0[2]], n),
                    g.row(t, [x0[0], x0[1] - 1, x0[2]], n),
                    g.row(t, [x0[0], x0[1] + 1, x0[2]], n),
                )
            }) else {
                break 'fast;
            };
            let c2 = self.c2;
            // SIMD clone of the loop below (bitwise-equal); scalar loop when inactive.
            if !crate::simd::wave_row(c2, center, prev, [xm, xp, ym, yp], &mut out, n) {
                for i in 0..n {
                    let c = center[i + 1];
                    let mut lap = 0.0;
                    lap += xm[i] - 2.0 * c + xp[i];
                    lap += ym[i] - 2.0 * c + yp[i];
                    lap += center[i] - 2.0 * c + center[i + 2];
                    out.set(i, 2.0 * c - prev[i] + c2 * lap);
                }
            }
            return;
        }
        update_row_pointwise(self, g, t, x0, len);
    }
}

/// The depth-2 wave shape: the 7-point star at `t`, plus the centre at `t−1`.
pub fn shape() -> Shape<3> {
    let mut cells = vec![ShapeCell::new(1, [0, 0, 0])];
    cells.push(ShapeCell::new(0, [0, 0, 0]));
    for d in 0..3 {
        let mut plus = [0i32; 3];
        plus[d] = 1;
        let mut minus = [0i32; 3];
        minus[d] = -1;
        cells.push(ShapeCell::new(0, plus));
        cells.push(ShapeCell::new(0, minus));
    }
    cells.push(ShapeCell::new(-1, [0, 0, 0]));
    Shape::must(cells)
}

/// TRAP/STRAP base-case coarsening tuned for the 3D wave kernel under the compiled
/// schedule path (measured with `schedule_path_json`).  The paper's 3D heuristic
/// (`3×3×1000`) fragments the decomposition into tens of thousands of sliver leaves
/// whose full-width rows all ran the boundary clone; 8×8 tiles with the unit-stride
/// dimension uncut keep the leaf count ~64× smaller at slightly better throughput.
pub fn tuned_coarsening() -> Coarsening<3> {
    crate::common::profile_coarsening("wave3d", Coarsening::new(8, [8, 8, 1000]))
}

fn tuned_plan() -> ExecutionPlan<3> {
    crate::common::tuned_plan("wave3d", tuned_coarsening())
}

/// A reusable executor session for the 3D wave kernel: TRAP on the compiled-schedule
/// path with the tuned coarsening preset, pre-compiled for windows of height `window`
/// on grids of extent `sizes`.
pub fn session(sizes: [usize; 3], window: i64) -> CompiledStencil<f64, WaveKernel, 3> {
    CompiledStencil::new(
        StencilSpec::new(shape()),
        WaveKernel::default(),
        tuned_plan(),
        sizes,
        window,
    )
}

/// A serving preset for the 3D wave kernel: a [`StencilServer`] over the tuned TRAP
/// plan, its program shared process-wide through the session registry.  Submit many
/// same-extent grids (optionally with per-tenant weights and deadlines via
/// `submit_with`), then `drain()` to run them as a pipelined multi-tenant workload in
/// `window`-step chunks.
pub fn serve(sizes: [usize; 3], window: i64) -> StencilServer<f64, WaveKernel, 3> {
    StencilServer::new(
        StencilSpec::new(shape()),
        WaveKernel::default(),
        tuned_plan(),
        sizes,
        window,
    )
}

/// Fallible variant of [`serve`]: invalid geometry (or a quarantined / compile-failed
/// registry key) surfaces as a typed [`ServeError`] instead of a panic.
pub fn try_serve(
    sizes: [usize; 3],
    window: i64,
) -> Result<StencilServer<f64, WaveKernel, 3>, ServeError> {
    StencilServer::try_new(
        StencilSpec::new(shape()),
        WaveKernel::default(),
        tuned_plan(),
        sizes,
        window,
    )
}

/// Builds the wave array: a Gaussian pulse at the centre, at rest (slices 0 and 1 equal),
/// with clamped (reflecting-ish) boundaries.
pub fn build(sizes: [usize; 3]) -> PochoirArray<f64, 3> {
    let mut a = PochoirArray::with_depth(sizes, 2);
    a.register_boundary(Boundary::Constant(0.0));
    let init = |x: [i64; 3]| init_value(sizes, x);
    a.fill_time_slice(0, init);
    a.fill_time_slice(1, init);
    a
}

/// Deterministic initial condition: a Gaussian pulse centred in the domain.
pub fn init_value(sizes: [usize; 3], x: [i64; 3]) -> f64 {
    let mut r2 = 0.0;
    for d in 0..3 {
        let c = (sizes[d] as f64 - 1.0) / 2.0;
        let dx = (x[d] as f64 - c) / (sizes[d] as f64 / 4.0);
        r2 += dx * dx;
    }
    (-r2).exp()
}

/// Reference implementation: three explicit buffers (previous, current, next).
pub fn reference(sizes: [usize; 3], c2: f64, steps: i64) -> Vec<f64> {
    let (nx, ny, nz) = (sizes[0] as i64, sizes[1] as i64, sizes[2] as i64);
    let idx = |x: i64, y: i64, z: i64| ((x * ny + y) * nz + z) as usize;
    let at = |buf: &[f64], x: i64, y: i64, z: i64| -> f64 {
        if x < 0 || x >= nx || y < 0 || y >= ny || z < 0 || z >= nz {
            0.0
        } else {
            buf[idx(x, y, z)]
        }
    };
    let len = (nx * ny * nz) as usize;
    let mut prev = vec![0.0f64; len];
    for x in 0..nx {
        for y in 0..ny {
            for z in 0..nz {
                prev[idx(x, y, z)] = init_value(sizes, [x, y, z]);
            }
        }
    }
    let mut curr = prev.clone();
    let mut next = vec![0.0f64; len];
    for _ in 0..steps {
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    let c = curr[idx(x, y, z)];
                    let lap = at(&curr, x - 1, y, z)
                        + at(&curr, x + 1, y, z)
                        + at(&curr, x, y - 1, z)
                        + at(&curr, x, y + 1, z)
                        + at(&curr, x, y, z - 1)
                        + at(&curr, x, y, z + 1)
                        - 6.0 * c;
                    next[idx(x, y, z)] = 2.0 * c - prev[idx(x, y, z)] + c2 * lap;
                }
            }
        }
        std::mem::swap(&mut prev, &mut curr);
        std::mem::swap(&mut curr, &mut next);
    }
    curr
}

/// The paper's Figure 3 problem size: 1,000³ for 500 steps.
pub const PAPER_SIZE: ([usize; 3], i64) = ([1000, 1000, 1000], 500);

#[cfg(test)]
mod tests {
    use super::*;
    use pochoir_core::engine::{run, Coarsening, EngineKind, ExecutionPlan};
    use pochoir_runtime::Serial;

    #[test]
    fn shape_has_depth_two() {
        let s = shape();
        assert_eq!(s.depth(), 2);
        assert_eq!(s.slopes(), [1, 1, 1]);
        assert_eq!(s.time_slices(), 3);
        assert_eq!(s.first_step(), 1);
    }

    #[test]
    fn engines_match_reference() {
        let sizes = [10usize, 9, 8];
        let steps = 6i64;
        let kernel = WaveKernel::default();
        let expected = reference(sizes, kernel.c2, steps);
        let spec = StencilSpec::new(shape());
        let t0 = spec.shape().first_step();
        for engine in [EngineKind::Trap, EngineKind::Strap, EngineKind::LoopsSerial] {
            let mut a = build(sizes);
            let plan = ExecutionPlan::new(engine).with_coarsening(Coarsening::new(2, [3, 3, 3]));
            run(&mut a, &spec, &kernel, t0, t0 + steps, &plan, &Serial);
            let got = a.snapshot(t0 + steps);
            for (g, e) in got.iter().zip(expected.iter()) {
                assert!((g - e).abs() < 1e-9, "{engine:?}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn row_and_point_base_cases_are_bitwise_identical() {
        use pochoir_core::engine::BaseCase;
        let sizes = [11usize, 9, 13];
        let steps = 5i64;
        let kernel = WaveKernel::default();
        let spec = StencilSpec::new(shape());
        let t0 = spec.shape().first_step();
        for engine in [EngineKind::Trap, EngineKind::Strap, EngineKind::LoopsSerial] {
            let mut snaps = Vec::new();
            for base_case in [BaseCase::Row, BaseCase::Point] {
                let mut a = build(sizes);
                let plan = ExecutionPlan::new(engine)
                    .with_coarsening(Coarsening::new(2, [3, 3, 4]))
                    .with_base_case(base_case);
                run(&mut a, &spec, &kernel, t0, t0 + steps, &plan, &Serial);
                snaps.push(a.snapshot(t0 + steps));
            }
            assert_eq!(snaps[0], snaps[1], "{engine:?}");
        }
    }

    #[test]
    fn wave_at_rest_stays_symmetric() {
        let sizes = [12usize, 12, 12];
        let kernel = WaveKernel::default();
        let spec = StencilSpec::new(shape());
        let mut a = build(sizes);
        let t0 = spec.shape().first_step();
        run(
            &mut a,
            &spec,
            &kernel,
            t0,
            t0 + 8,
            &ExecutionPlan::trap(),
            &Serial,
        );
        let snap = a.snapshot(t0 + 8);
        let idx = |x: usize, y: usize, z: usize| (x * 12 + y) * 12 + z;
        // The initial pulse is centred, so the field stays mirror-symmetric about the
        // centre planes (up to floating-point roundoff differences in summation order,
        // which are zero here because both sides compute identical expressions).
        for x in 0..12 {
            for y in 0..12 {
                for z in 0..12 {
                    let mirrored = snap[idx(11 - x, y, z)];
                    assert!((snap[idx(x, y, z)] - mirrored).abs() < 1e-9);
                }
            }
        }
    }
}
