//! Explicit SSE2/AVX2 row-kernel bodies for the hot stencils, behind the
//! process-wide dispatch of [`pochoir_core::simd`].
//!
//! Each function here is the vector twin of one scalar row loop in [`heat`],
//! [`life`] or [`wave`]: it replays the **exact same per-element operation
//! order**, lane by lane (no FMA, no reassociation, scalar remainder for the
//! tail), so the results are bitwise-equal to the scalar path on every input —
//! the Pochoir Guarantee extends to the vectorized clones.  All vector loads
//! are unaligned (`loadu`): the neighbour legs of a stencil are offset by ±1
//! element from each other, so at most one leg per row can be aligned anyway;
//! the aligned, padded storage of [`PochoirArray`](pochoir_core::prelude::PochoirArray)
//! keeps the *store* stream and the cache-line footprint tidy.
//!
//! The public entry points ([`heat_row`], [`life_row`], [`wave_row`]) consult
//! [`pochoir_core::simd::active`] — published by the executor from the plan's
//! [`SimdPolicy`](pochoir_core::simd::SimdPolicy) — and return `false` when the
//! row should take the kernel's scalar loop instead (scalar policy, unsupported
//! host, or a non-x86-64 build).
//!
//! [`heat`]: crate::heat
//! [`life`]: crate::life
//! [`wave`]: crate::wave

use pochoir_core::prelude::RowWriter;
use pochoir_core::simd::{active, note_row, SimdIsa};

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The `#[target_feature]` bodies.  Callers must have verified feature
    //! support (the dispatchers only route here when detection succeeded).
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// Generates one ISA variant of the heat row body: the star-stencil Jacobi
    /// update `acc = c + Σ_d α·(lo_d + hi_d − 2c)` with the unit-stride leg last,
    /// exactly like `HeatKernel::update_row`'s scalar loop.
    macro_rules! heat_row_body {
        ($name:ident, $feat:literal, $lanes:expr, $loadu:ident, $storeu:ident,
         $add:ident, $sub:ident, $mul:ident, $set1:ident) => {
            /// # Safety
            ///
            /// The host must support the target feature; `center` must hold at
            /// least `n + 2` elements, every row in `lo`/`hi` at least `n`, and
            /// `out` must be valid for `n` writes.
            #[target_feature(enable = $feat)]
            pub unsafe fn $name(
                alpha: f64,
                center: &[f64],
                lo: &[&[f64]],
                hi: &[&[f64]],
                out: *mut f64,
                n: usize,
            ) {
                const L: usize = $lanes;
                let va = $set1(alpha);
                let v2 = $set1(2.0);
                let mut i = 0usize;
                // The leg count is specialized so the hot loops carry no
                // dynamic-bound inner loop (which would block unrolling and
                // scheduling): 0 off-axis legs is heat1d, 1 is heat2d.  The
                // accumulation order is identical in every branch.
                match lo.len() {
                    0 => {
                        while i + L <= n {
                            let c = $loadu(center.as_ptr().add(i + 1));
                            let l = $loadu(center.as_ptr().add(i));
                            let h = $loadu(center.as_ptr().add(i + 2));
                            let acc = $add(c, $mul(va, $sub($add(l, h), $mul(v2, c))));
                            $storeu(out.add(i), acc);
                            i += L;
                        }
                    }
                    1 => {
                        let lp = lo.get_unchecked(0).as_ptr();
                        let hp = hi.get_unchecked(0).as_ptr();
                        while i + L <= n {
                            let c = $loadu(center.as_ptr().add(i + 1));
                            let mut acc = c;
                            let l = $loadu(lp.add(i));
                            let h = $loadu(hp.add(i));
                            acc = $add(acc, $mul(va, $sub($add(l, h), $mul(v2, c))));
                            let l = $loadu(center.as_ptr().add(i));
                            let h = $loadu(center.as_ptr().add(i + 2));
                            acc = $add(acc, $mul(va, $sub($add(l, h), $mul(v2, c))));
                            $storeu(out.add(i), acc);
                            i += L;
                        }
                    }
                    _ => {
                        while i + L <= n {
                            let c = $loadu(center.as_ptr().add(i + 1));
                            let mut acc = c;
                            for d in 0..lo.len() {
                                let l = $loadu(lo.get_unchecked(d).as_ptr().add(i));
                                let h = $loadu(hi.get_unchecked(d).as_ptr().add(i));
                                acc = $add(acc, $mul(va, $sub($add(l, h), $mul(v2, c))));
                            }
                            let l = $loadu(center.as_ptr().add(i));
                            let h = $loadu(center.as_ptr().add(i + 2));
                            acc = $add(acc, $mul(va, $sub($add(l, h), $mul(v2, c))));
                            $storeu(out.add(i), acc);
                            i += L;
                        }
                    }
                }
                while i < n {
                    let c = *center.get_unchecked(i + 1);
                    let mut acc = c;
                    for d in 0..lo.len() {
                        acc += alpha
                            * (lo.get_unchecked(d).get_unchecked(i)
                                + hi.get_unchecked(d).get_unchecked(i)
                                - 2.0 * c);
                    }
                    acc +=
                        alpha * (center.get_unchecked(i) + center.get_unchecked(i + 2) - 2.0 * c);
                    *out.add(i) = acc;
                    i += 1;
                }
            }
        };
    }

    heat_row_body!(
        heat_row_sse2,
        "sse2",
        2,
        _mm_loadu_pd,
        _mm_storeu_pd,
        _mm_add_pd,
        _mm_sub_pd,
        _mm_mul_pd,
        _mm_set1_pd
    );
    heat_row_body!(
        heat_row_avx2,
        "avx2",
        4,
        _mm256_loadu_pd,
        _mm256_storeu_pd,
        _mm256_add_pd,
        _mm256_sub_pd,
        _mm256_mul_pd,
        _mm256_set1_pd
    );

    /// Generates one ISA variant of the wave row body: depth-2 leapfrog
    /// `2c − prev + c²·lap` with the laplacian legs accumulated in the same
    /// order as `WaveKernel::update_row`'s scalar loop.
    macro_rules! wave_row_body {
        ($name:ident, $feat:literal, $lanes:expr, $loadu:ident, $storeu:ident,
         $add:ident, $sub:ident, $mul:ident, $set1:ident) => {
            /// # Safety
            ///
            /// The host must support the target feature; `center` must hold at
            /// least `n + 2` elements, `prev` and every leg at least `n`, and
            /// `out` must be valid for `n` writes.
            #[target_feature(enable = $feat)]
            pub unsafe fn $name(
                c2: f64,
                center: &[f64],
                prev: &[f64],
                legs: [&[f64]; 4],
                out: *mut f64,
                n: usize,
            ) {
                const L: usize = $lanes;
                let [xm, xp, ym, yp] = legs;
                let vc2 = $set1(c2);
                let v2 = $set1(2.0);
                let vzero = $set1(0.0);
                let mut i = 0usize;
                while i + L <= n {
                    let c = $loadu(center.as_ptr().add(i + 1));
                    let c2x = $mul(v2, c);
                    // lap starts from 0.0 and accumulates the three leg pairs in
                    // scalar order: (leg_lo − 2c) + leg_hi per axis.
                    let mut lap = vzero;
                    lap = $add(
                        lap,
                        $add(
                            $sub($loadu(xm.as_ptr().add(i)), c2x),
                            $loadu(xp.as_ptr().add(i)),
                        ),
                    );
                    lap = $add(
                        lap,
                        $add(
                            $sub($loadu(ym.as_ptr().add(i)), c2x),
                            $loadu(yp.as_ptr().add(i)),
                        ),
                    );
                    lap = $add(
                        lap,
                        $add(
                            $sub($loadu(center.as_ptr().add(i)), c2x),
                            $loadu(center.as_ptr().add(i + 2)),
                        ),
                    );
                    let v = $add($sub(c2x, $loadu(prev.as_ptr().add(i))), $mul(vc2, lap));
                    $storeu(out.add(i), v);
                    i += L;
                }
                while i < n {
                    let c = *center.get_unchecked(i + 1);
                    let mut lap = 0.0;
                    lap += xm.get_unchecked(i) - 2.0 * c + xp.get_unchecked(i);
                    lap += ym.get_unchecked(i) - 2.0 * c + yp.get_unchecked(i);
                    lap += center.get_unchecked(i) - 2.0 * c + center.get_unchecked(i + 2);
                    *out.add(i) = 2.0 * c - prev.get_unchecked(i) + c2 * lap;
                    i += 1;
                }
            }
        };
    }

    wave_row_body!(
        wave_row_sse2,
        "sse2",
        2,
        _mm_loadu_pd,
        _mm_storeu_pd,
        _mm_add_pd,
        _mm_sub_pd,
        _mm_mul_pd,
        _mm_set1_pd
    );
    wave_row_body!(
        wave_row_avx2,
        "avx2",
        4,
        _mm256_loadu_pd,
        _mm256_storeu_pd,
        _mm256_add_pd,
        _mm256_sub_pd,
        _mm256_mul_pd,
        _mm256_set1_pd
    );

    /// Generates one ISA variant of the Life row body: the 8-neighbour byte sum
    /// and the branch-free rule `next = (n == 3) | (alive & n == 2)`, which is
    /// exactly the truth table of `LifeKernel`'s scalar match.
    macro_rules! life_row_body {
        ($name:ident, $feat:literal, $lanes:expr, $vec:ty, $loadu:ident, $storeu:ident,
         $add:ident, $cmpeq:ident, $and:ident, $or:ident, $set1:ident) => {
            /// # Safety
            ///
            /// The host must support the target feature; `up`, `mid` and `down`
            /// must hold at least `n + 2` elements each, and `out` must be valid
            /// for `n` writes.
            #[target_feature(enable = $feat)]
            pub unsafe fn $name(up: &[u8], mid: &[u8], down: &[u8], out: *mut u8, n: usize) {
                const L: usize = $lanes;
                let ones = $set1(1);
                let twos = $set1(2);
                let threes = $set1(3);
                let at = |row: &[u8], j: usize| row.as_ptr().add(j) as *const $vec;
                let mut i = 0usize;
                while i + L <= n {
                    let mut nb = $loadu(at(up, i));
                    nb = $add(nb, $loadu(at(up, i + 1)));
                    nb = $add(nb, $loadu(at(up, i + 2)));
                    nb = $add(nb, $loadu(at(mid, i)));
                    nb = $add(nb, $loadu(at(mid, i + 2)));
                    nb = $add(nb, $loadu(at(down, i)));
                    nb = $add(nb, $loadu(at(down, i + 1)));
                    nb = $add(nb, $loadu(at(down, i + 2)));
                    let alive = $cmpeq($loadu(at(mid, i + 1)), ones);
                    let eq2 = $cmpeq(nb, twos);
                    let eq3 = $cmpeq(nb, threes);
                    let next = $and($or(eq3, $and(alive, eq2)), ones);
                    $storeu(out.add(i) as *mut $vec, next);
                    i += L;
                }
                while i < n {
                    let neighbours = up.get_unchecked(i)
                        + up.get_unchecked(i + 1)
                        + up.get_unchecked(i + 2)
                        + mid.get_unchecked(i)
                        + mid.get_unchecked(i + 2)
                        + down.get_unchecked(i)
                        + down.get_unchecked(i + 1)
                        + down.get_unchecked(i + 2);
                    let alive = *mid.get_unchecked(i + 1) == 1;
                    *out.add(i) = match (alive, neighbours) {
                        (true, 2) | (true, 3) => 1,
                        (false, 3) => 1,
                        _ => 0,
                    };
                    i += 1;
                }
            }
        };
    }

    life_row_body!(
        life_row_sse2,
        "sse2",
        16,
        __m128i,
        _mm_loadu_si128,
        _mm_storeu_si128,
        _mm_add_epi8,
        _mm_cmpeq_epi8,
        _mm_and_si128,
        _mm_or_si128,
        _mm_set1_epi8
    );
    life_row_body!(
        life_row_avx2,
        "avx2",
        32,
        __m256i,
        _mm256_loadu_si256,
        _mm256_storeu_si256,
        _mm256_add_epi8,
        _mm256_cmpeq_epi8,
        _mm256_and_si256,
        _mm256_or_si256,
        _mm256_set1_epi8
    );
}

/// Runs the heat row on the active SIMD ISA, if any.  `center` is the extended
/// unit-stride leg (`n + 2` elements), `lo`/`hi` the off-axis legs (`n` each).
/// Returns `false` — touching nothing — when the caller should run its scalar
/// loop instead.
#[inline]
pub fn heat_row(
    alpha: f64,
    center: &[f64],
    lo: &[&[f64]],
    hi: &[&[f64]],
    out: &mut RowWriter<'_, f64>,
    n: usize,
) -> bool {
    debug_assert!(center.len() >= n + 2 && out.len() >= n);
    debug_assert!(lo.len() == hi.len());
    debug_assert!(lo.iter().chain(hi.iter()).all(|r| r.len() >= n));
    #[cfg(target_arch = "x86_64")]
    {
        match active() {
            // Safety: `active()` only reports an ISA that host detection confirmed,
            // and the row lengths are the dispatchers' documented contract.
            Some(SimdIsa::Avx2) => unsafe {
                x86::heat_row_avx2(alpha, center, lo, hi, out.as_mut_ptr(), n);
                note_row(SimdIsa::Avx2);
                true
            },
            Some(SimdIsa::Sse2) => unsafe {
                x86::heat_row_sse2(alpha, center, lo, hi, out.as_mut_ptr(), n);
                note_row(SimdIsa::Sse2);
                true
            },
            None => false,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (alpha, center, lo, hi, out, n);
        false
    }
}

/// Runs the wave row on the active SIMD ISA, if any.  `center` is the extended
/// unit-stride leg (`n + 2`), `prev` the `t − 1` centre row and `legs` the four
/// off-axis legs `[xm, xp, ym, yp]` (`n` each).  Returns `false` when the
/// caller should run its scalar loop instead.
#[inline]
pub fn wave_row(
    c2: f64,
    center: &[f64],
    prev: &[f64],
    legs: [&[f64]; 4],
    out: &mut RowWriter<'_, f64>,
    n: usize,
) -> bool {
    debug_assert!(center.len() >= n + 2 && prev.len() >= n && out.len() >= n);
    debug_assert!(legs.iter().all(|r| r.len() >= n));
    #[cfg(target_arch = "x86_64")]
    {
        match active() {
            // Safety: as in `heat_row`.
            Some(SimdIsa::Avx2) => unsafe {
                x86::wave_row_avx2(c2, center, prev, legs, out.as_mut_ptr(), n);
                note_row(SimdIsa::Avx2);
                true
            },
            Some(SimdIsa::Sse2) => unsafe {
                x86::wave_row_sse2(c2, center, prev, legs, out.as_mut_ptr(), n);
                note_row(SimdIsa::Sse2);
                true
            },
            None => false,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (c2, center, prev, legs, out, n);
        false
    }
}

/// Runs the Life row on the active SIMD ISA, if any.  `up`/`mid`/`down` are the
/// three extended Moore rows (`n + 2` each).  Returns `false` when the caller
/// should run its scalar loop instead.
#[inline]
pub fn life_row(up: &[u8], mid: &[u8], down: &[u8], out: &mut RowWriter<'_, u8>, n: usize) -> bool {
    debug_assert!(up.len() >= n + 2 && mid.len() >= n + 2 && down.len() >= n + 2);
    debug_assert!(out.len() >= n);
    #[cfg(target_arch = "x86_64")]
    {
        match active() {
            // Safety: as in `heat_row`.
            Some(SimdIsa::Avx2) => unsafe {
                x86::life_row_avx2(up, mid, down, out.as_mut_ptr(), n);
                note_row(SimdIsa::Avx2);
                true
            },
            Some(SimdIsa::Sse2) => unsafe {
                x86::life_row_sse2(up, mid, down, out.as_mut_ptr(), n);
                note_row(SimdIsa::Sse2);
                true
            },
            None => false,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (up, mid, down, out, n);
        false
    }
}
