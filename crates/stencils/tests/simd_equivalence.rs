//! Property suite for the explicit SIMD row kernels: every SIMD body must be
//! **bitwise-equal** to the scalar row loop — across apps, boundary conditions,
//! odd/unaligned row lengths and misaligned window offsets.
//!
//! The whole matrix runs inside ONE `#[test]` function in its own integration
//! test binary: the active-ISA knob is process-global (set by every executor
//! run), so concurrently running engine tests in a shared binary would race it.
//! Within this process the runs are strictly sequential.

use pochoir_core::boundary::Boundary;
use pochoir_core::engine::{run, Coarsening, ExecutionPlan};
use pochoir_core::prelude::StencilSpec;
use pochoir_core::simd::{isa_detected, rows_snapshot, SimdIsa, SimdPolicy};
use pochoir_runtime::Serial;
use pochoir_stencils::{heat, life, wave};

/// The policies under test: scalar is the baseline; forced ISAs degrade to
/// scalar gracefully when the host lacks them (still bitwise-equal); Auto picks
/// the widest detected ISA.
fn policies() -> Vec<SimdPolicy> {
    vec![
        SimdPolicy::Scalar,
        SimdPolicy::Force(SimdIsa::Sse2),
        SimdPolicy::Force(SimdIsa::Avx2),
        SimdPolicy::Auto,
    ]
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Expected SIMD-row activity for a policy: which per-ISA row counter (if any)
/// must strictly increase during the run on this host.
fn expected_isa(policy: SimdPolicy) -> Option<SimdIsa> {
    // Mirror resolve(): POCHOIR_SIMD overrides everything (CI sets it for the
    // forced-scalar re-run), then detection gates the forced/auto choice.
    if let Ok(v) = std::env::var("POCHOIR_SIMD") {
        if let Some(p) = SimdPolicy::parse(&v) {
            return match p {
                SimdPolicy::Scalar => None,
                SimdPolicy::Auto => [SimdIsa::Avx2, SimdIsa::Sse2]
                    .into_iter()
                    .find(|&i| isa_detected(i)),
                SimdPolicy::Force(i) => isa_detected(i).then_some(i),
            };
        }
    }
    match policy {
        SimdPolicy::Scalar => None,
        SimdPolicy::Auto => [SimdIsa::Avx2, SimdIsa::Sse2]
            .into_iter()
            .find(|&i| isa_detected(i)),
        SimdPolicy::Force(i) => isa_detected(i).then_some(i),
    }
}

/// Asserts the per-ISA row counters moved (or not) as `expected_isa` demands.
fn check_counters(label: &str, before: (u64, u64), expect: Option<SimdIsa>) {
    let after = rows_snapshot();
    match expect {
        Some(SimdIsa::Sse2) => assert!(after.0 > before.0, "{label}: expected SSE2 rows"),
        Some(SimdIsa::Avx2) => assert!(after.1 > before.1, "{label}: expected AVX2 rows"),
        None => assert_eq!(after, before, "{label}: expected no SIMD rows"),
    }
}

#[test]
fn simd_rows_are_bitwise_equal_to_scalar() {
    // Odd extents and varied coarsenings so the decomposition produces rows with
    // unaligned lengths and window offsets that start mid-cache-line.
    let heat_coarsenings_2d = [Coarsening::new(2, [5, 7]), Coarsening::new(3, [50, 4096])];

    // Heat 1D.
    for boundary in [Boundary::Constant(0.0), Boundary::Periodic, Boundary::Clamp] {
        let kernel = heat::HeatKernel::<1>::default();
        let spec = StencilSpec::new(heat::shape::<1>());
        let sizes = [37usize];
        let mut baseline = None;
        for policy in policies() {
            let mut a = heat::build(sizes, boundary.clone());
            let plan = ExecutionPlan::trap()
                .with_coarsening(Coarsening::new(2, [7]))
                .with_simd(policy);
            let before = rows_snapshot();
            run(&mut a, &spec, &kernel, 0, 9, &plan, &Serial);
            check_counters(
                &format!("heat1d {boundary:?} {policy:?}"),
                before,
                expected_isa(policy),
            );
            let snap = bits(&a.snapshot(9));
            match &baseline {
                None => baseline = Some(snap),
                Some(b) => assert_eq!(b, &snap, "heat1d {boundary:?} {policy:?}"),
            }
        }
    }

    // Heat 2D, two coarsenings (short fragmented rows and full-width rows).
    for boundary in [Boundary::Constant(0.0), Boundary::Periodic, Boundary::Clamp] {
        for coarsening in heat_coarsenings_2d {
            let kernel = heat::HeatKernel::<2>::default();
            let spec = StencilSpec::new(heat::shape::<2>());
            let sizes = [19usize, 33];
            let mut baseline = None;
            for policy in policies() {
                let mut a = heat::build(sizes, boundary.clone());
                let plan = ExecutionPlan::trap()
                    .with_coarsening(coarsening)
                    .with_simd(policy);
                let before = rows_snapshot();
                run(&mut a, &spec, &kernel, 0, 7, &plan, &Serial);
                check_counters(
                    &format!("heat2d {boundary:?} {coarsening:?} {policy:?}"),
                    before,
                    expected_isa(policy),
                );
                let snap = bits(&a.snapshot(7));
                match &baseline {
                    None => baseline = Some(snap),
                    Some(b) => {
                        assert_eq!(b, &snap, "heat2d {boundary:?} {coarsening:?} {policy:?}")
                    }
                }
            }
        }
    }

    // Life (torus; u8 lanes — row length 45 exercises the 16/32-lane tails).
    {
        let spec = StencilSpec::new(life::shape());
        let sizes = [21usize, 45];
        let mut baseline = None;
        for policy in policies() {
            let mut a = life::build(sizes, 400);
            let plan = ExecutionPlan::trap()
                .with_coarsening(Coarsening::new(2, [6, 11]))
                .with_simd(policy);
            let before = rows_snapshot();
            run(&mut a, &spec, &life::LifeKernel, 0, 8, &plan, &Serial);
            check_counters(&format!("life {policy:?}"), before, expected_isa(policy));
            let snap = a.snapshot(8);
            match &baseline {
                None => baseline = Some(snap),
                Some(b) => assert_eq!(b, &snap, "life {policy:?}"),
            }
        }
    }

    // Wave (depth-2, 7-row kernel; odd unit-stride extent 21).
    {
        let kernel = wave::WaveKernel::default();
        let spec = StencilSpec::new(wave::shape());
        let sizes = [9usize, 8, 21];
        let t0 = spec.shape().first_step();
        let mut baseline = None;
        for policy in policies() {
            let mut a = wave::build(sizes);
            let plan = ExecutionPlan::trap()
                .with_coarsening(Coarsening::new(2, [3, 3, 5]))
                .with_simd(policy);
            let before = rows_snapshot();
            run(&mut a, &spec, &kernel, t0, t0 + 6, &plan, &Serial);
            check_counters(&format!("wave {policy:?}"), before, expected_isa(policy));
            let snap = bits(&a.snapshot(t0 + 6));
            match &baseline {
                None => baseline = Some(snap),
                Some(b) => assert_eq!(b, &snap, "wave {policy:?}"),
            }
        }
    }

    // Misaligned-window sweep: prime extents and tiny coarsenings fragment the
    // trapezoidal decomposition into rows whose start offsets cover every lane
    // phase (the slopes shift each time level by ±1), and whose lengths hit
    // every `len % lanes` residue — including sub-lane rows shorter than one
    // vector, which must take the scalar tail entirely.
    for (sizes, coarsening) in [
        ([17usize, 61], Coarsening::new(2, [4, 9])),
        ([16, 64], Coarsening::new(3, [5, 13])),
        ([5, 7], Coarsening::new(2, [2, 2])),
    ] {
        let kernel = heat::HeatKernel::<2>::default();
        let spec = StencilSpec::new(heat::shape::<2>());
        let mut baseline = None;
        for policy in policies() {
            let mut a = heat::build(sizes, Boundary::Periodic);
            let plan = ExecutionPlan::trap()
                .with_coarsening(coarsening)
                .with_simd(policy);
            run(&mut a, &spec, &kernel, 0, 6, &plan, &Serial);
            let snap = bits(&a.snapshot(6));
            match &baseline {
                None => baseline = Some(snap),
                Some(b) => assert_eq!(b, &snap, "heat2d {sizes:?} {coarsening:?} {policy:?}"),
            }
        }
    }
}
