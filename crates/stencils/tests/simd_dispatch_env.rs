//! End-to-end dispatch test for the `POCHOIR_SIMD` environment override: with
//! `POCHOIR_SIMD=off` every run must route to the scalar row loop — even under
//! `SimdPolicy::Force` — and the per-ISA row counters must not move.
//!
//! Lives in its own integration-test binary because the active-ISA knob and the
//! row counters are process-global: engine tests running concurrently in a
//! shared binary would race them.  Within this process the single `#[test]`
//! runs alone, and the env var is set before any executor run.

use pochoir_core::boundary::Boundary;
use pochoir_core::engine::{run, Coarsening, ExecutionPlan};
use pochoir_core::prelude::StencilSpec;
use pochoir_core::simd::{detected, rows_snapshot, SimdIsa, SimdPolicy};
use pochoir_runtime::Serial;
use pochoir_stencils::heat;

#[test]
fn pochoir_simd_off_routes_every_policy_to_scalar() {
    // Safety: set before any thread observes it; this test binary is
    // single-threaded at this point (one #[test], Serial parallelism).
    unsafe { std::env::set_var("POCHOIR_SIMD", "off") };

    let kernel = heat::HeatKernel::<2>::default();
    let spec = StencilSpec::new(heat::shape::<2>());
    let before = rows_snapshot();
    for policy in [
        SimdPolicy::Auto,
        SimdPolicy::Force(SimdIsa::Sse2),
        SimdPolicy::Force(SimdIsa::Avx2),
        SimdPolicy::Scalar,
    ] {
        let mut a = heat::build([24, 40], Boundary::Periodic);
        let plan = ExecutionPlan::trap()
            .with_coarsening(Coarsening::new(2, [6, 40]))
            .with_simd(policy);
        run(&mut a, &spec, &kernel, 0, 6, &plan, &Serial);
    }
    assert_eq!(
        rows_snapshot(),
        before,
        "POCHOIR_SIMD=off must suppress all SIMD rows"
    );

    // And flipping the env back to auto re-enables dispatch (when the host has
    // any vector ISA at all), proving the suppression above wasn't a no-op.
    unsafe { std::env::set_var("POCHOIR_SIMD", "auto") };
    let before = rows_snapshot();
    let mut a = heat::build([24, 40], Boundary::Periodic);
    let plan = ExecutionPlan::trap().with_coarsening(Coarsening::new(2, [6, 40]));
    run(&mut a, &spec, &kernel, 0, 6, &plan, &Serial);
    let after = rows_snapshot();
    match detected() {
        Some(SimdIsa::Avx2) => assert!(after.1 > before.1, "expected AVX2 rows"),
        Some(SimdIsa::Sse2) => assert!(after.0 > before.0, "expected SSE2 rows"),
        None => assert_eq!(after, before),
    }
    unsafe { std::env::remove_var("POCHOIR_SIMD") };
}
