//! The `pochoir_serve` binary: bind a stencil service and run until killed.
//!
//! ```text
//! pochoir_serve [--addr HOST:PORT] [--record PATH [--record-name NAME]
//!               [--record-seed N] [--epoch N]] [--max-pending N]
//!               [--max-queued-windows N] [--max-session-leaves N]
//!               [--max-sessions N] [--max-steps N]
//!               [--drain-interval-ms N] [--assumed-window-micros X]
//! ```
//!
//! Prints `listening on <addr>` once the socket is bound (with the ephemeral
//! port resolved when `--addr` ends in `:0`), which is what the CI smoke step
//! and the tests wait for.

use std::path::PathBuf;
use std::time::Duration;

use pochoir_core::engine::AdmissionPolicy;
use pochoir_serve::server::{announce, RecordConfig, ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: pochoir_serve [--addr HOST:PORT] [--record PATH] [--record-name NAME]\n\
         \x20                    [--record-seed N] [--epoch N] [--max-pending N]\n\
         \x20                    [--max-queued-windows N] [--max-session-leaves N]\n\
         \x20                    [--max-sessions N] [--max-steps N]\n\
         \x20                    [--drain-interval-ms N] [--assumed-window-micros X]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServeConfig::default();
    let mut record: Option<RecordConfig> = None;
    let mut admission: Option<AdmissionPolicy> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => {
                    eprintln!("{name} needs a value");
                    usage();
                }
            }
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--record" => {
                record.get_or_insert_with(RecordConfig::default).path =
                    PathBuf::from(value("--record"));
            }
            "--record-name" => {
                record.get_or_insert_with(RecordConfig::default).name = value("--record-name");
            }
            "--record-seed" => {
                record.get_or_insert_with(RecordConfig::default).seed =
                    parse(&value("--record-seed"), "--record-seed");
            }
            "--epoch" => {
                record.get_or_insert_with(RecordConfig::default).epoch =
                    parse(&value("--epoch"), "--epoch");
            }
            "--max-pending" => {
                admission
                    .get_or_insert_with(AdmissionPolicy::default)
                    .max_pending = Some(parse(&value("--max-pending"), "--max-pending"));
            }
            "--max-queued-windows" => {
                admission
                    .get_or_insert_with(AdmissionPolicy::default)
                    .max_queued_windows = Some(parse(
                    &value("--max-queued-windows"),
                    "--max-queued-windows",
                ));
            }
            "--max-session-leaves" => {
                admission
                    .get_or_insert_with(AdmissionPolicy::default)
                    .max_session_leaves = Some(parse(
                    &value("--max-session-leaves"),
                    "--max-session-leaves",
                ));
            }
            "--max-sessions" => {
                config.max_sessions = parse(&value("--max-sessions"), "--max-sessions");
            }
            "--max-steps" => {
                config.max_steps_per_submit = parse(&value("--max-steps"), "--max-steps");
            }
            "--drain-interval-ms" => {
                config.drain_interval = Duration::from_millis(parse(
                    &value("--drain-interval-ms"),
                    "--drain-interval-ms",
                ));
            }
            "--assumed-window-micros" => {
                config.assumed_window_micros = match value("--assumed-window-micros").parse() {
                    Ok(x) => x,
                    Err(_) => usage(),
                };
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    config.record = record;
    config.admission = admission;

    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("pochoir_serve: cannot bind: {e}");
            std::process::exit(1);
        }
    };
    announce(server.addr());
    // Serve until killed; the kernel reaps the threads, and record mode's
    // trace is flushed on demand via the protocol's Flush frame.
    loop {
        std::thread::park();
    }
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    match value.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("{flag}: cannot parse {value:?}");
            usage();
        }
    }
}
