//! `pochoir-serve`: a network-facing stencil service over the pochoir serving
//! layer.
//!
//! The crate turns the in-process [`StencilServer`](pochoir_core::engine::StencilServer)
//! into a TCP service speaking a small length-prefixed binary protocol
//! (documented in `docs/protocol.md`):
//!
//! 1. a client negotiates an `(app, geometry, window)` session and receives a
//!    handle backed by the process-global session registry — the compiled
//!    program is shared with every other client (and every in-process caller)
//!    of the same geometry;
//! 2. it submits `(grid, t0, t1, weight, deadline)` requests, which drain
//!    through the pipelined scheduler under the configured
//!    [`AdmissionPolicy`](pochoir_core::engine::AdmissionPolicy);
//! 3. it polls and fetches results that are bitwise-identical to running the
//!    same batch in-process — the end-to-end tests pin exactly that.
//!
//! [`protocol`] is the wire codec (pure, fuzzed by property tests),
//! [`server`] the blocking reactor, and [`client`] a minimal blocking client
//! plus the trace-driven load generator used by the bench smoke step.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{replay_trace, Client, ClientError, FetchedResult, Session};
pub use protocol::{Deadline, ElemType, ErrorCode, Frame, FrameError, RequestStatus};
pub use server::{RecordConfig, ServeConfig, Server};
