//! The blocking reactor: accept loop + one worker thread per connection + one
//! shared drain thread, all over [`std::net::TcpListener`].
//!
//! The vendored-dependency constraint rules out an async runtime, and the
//! serving layer underneath is synchronous anyway (a drain is a blocking call
//! into the pipelined scheduler), so the server is an honest thread-per-
//! connection design:
//!
//! * the **accept thread** turns each connection into a worker thread
//!   (registered in a connection table so shutdown can close its socket and
//!   join it);
//! * each **connection worker** speaks the frame protocol: it decodes requests,
//!   builds arrays from wire bytes, and submits into the shared session table;
//! * the **drain thread** wakes whenever work is queued (condvar, with a
//!   timeout so a lost notification cannot stall the queue) and drains every
//!   session with pending work through
//!   [`StencilServer::try_drain`] — per-tenant panics retire only their own
//!   chain, exactly as in-process.
//!
//! **Locking model.**  There are two lock tiers and they are never nested:
//! a global [`State`] mutex guards the request table, the session index, and
//! record-mode bookkeeping — all cheap map operations — while each session's
//! compiled server and drain queue live behind that session's own mutex.  The
//! drain thread computes entirely under the session lock, so submits, polls,
//! and fetches on every connection keep flowing while a session drains; only
//! the brief result hand-off touches the global lock.
//!
//! Sessions are keyed `(app, geometry, chunk)` and backed by the process-global
//! session registry, so two connections negotiating the same geometry share one
//! compiled program — compile-once is preserved across the network boundary and
//! asserted by the end-to-end test.  Because negotiation compiles and the
//! service is unauthenticated, the session table is bounded
//! ([`ServeConfig::max_sessions`], answered with a typed `Shed` error when
//! full), geometries whose submit payload could never fit in [`MAX_FRAME`] are
//! refused at negotiation, and each submission's step span is capped
//! ([`ServeConfig::max_steps_per_submit`]) so one cheap frame cannot buy an
//! unbounded drain.  Wall-clock deadlines are converted to the scheduler's
//! logical ticks using a per-session cost model calibrated from
//! [`SessionStats`](pochoir_core::engine::SessionStats) window counts and
//! measured drain times.
//!
//! With [`ServeConfig::record`] set, every admitted epoch-zero submission
//! appends a [`TraceRecord`]; the trace is written in the canonical emission
//! (byte-stable under parse → emit) on `Flush` frames and at shutdown, and
//! replays through the `pochoir-bench` harness to the same grid digests the
//! live clients fetched.  See `docs/protocol.md` for the full wire contract.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pochoir_core::boundary::Boundary;
use pochoir_core::engine::{
    AdmissionPolicy, Coarsening, ExecutionPlan, ServeError, Sharding, StencilServer, SubmitOptions,
    TicketOutcome,
};
use pochoir_core::grid::PochoirArray;
use pochoir_core::kernel::{StencilKernel, StencilSpec};
use pochoir_runtime::Runtime;
use pochoir_stencils::heat::HeatKernel;
use pochoir_stencils::life::LifeKernel;
use pochoir_stencils::wave::WaveKernel;
use pochoir_stencils::{heat, life, traffic, wave};
use pochoir_trace::corpus::GIANT_TILES;
use pochoir_trace::{Trace, TraceApp, TraceRecord};

use crate::protocol::{
    grid_from_bytes, read_frame, result_payload, wire_error, write_frame, Deadline, ElemType,
    ErrorCode, Frame, ReadError, RequestStatus, WireElem, MAX_FRAME, PROTOCOL_VERSION,
};

/// Record-mode settings: where and how to write the trace of admitted traffic.
#[derive(Clone, Debug)]
pub struct RecordConfig {
    /// Output path for the canonical JSON trace.
    pub path: PathBuf,
    /// The trace's `name` header field.
    pub name: String,
    /// The trace's `seed` header field (provenance only; replay never draws
    /// randomness from it).
    pub seed: u64,
    /// Arrival ticks per replay epoch (`Trace::epoch`); the live server drains
    /// on demand, so this only shapes how the replay harness buckets drains.
    pub epoch: u64,
}

impl Default for RecordConfig {
    fn default() -> Self {
        RecordConfig {
            path: PathBuf::from("recorded-trace.json"),
            name: "recorded".to_string(),
            seed: 1,
            epoch: 8,
        }
    }
}

/// Server construction knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Per-tenant quotas and watermarks installed on every session's server;
    /// `None` admits everything.
    pub admission: Option<AdmissionPolicy>,
    /// How long the drain thread sleeps when no work is queued (also the upper
    /// bound on submit→drain latency if a wakeup is lost).
    pub drain_interval: Duration,
    /// Record admitted traffic as a replayable trace.
    pub record: Option<RecordConfig>,
    /// Per-window cost assumed for wall-clock deadline conversion until the
    /// first drain calibrates the session (microseconds per window).
    pub assumed_window_micros: f64,
    /// Ceiling on live sessions.  Every negotiated session holds a compiled
    /// program for the life of the server, so an unauthenticated peer could
    /// otherwise grow the table (and the compile registry) without bound; a
    /// `Negotiate` for a new key beyond the cap is refused with a typed
    /// `Shed` error while existing keys keep re-joining.
    pub max_sessions: usize,
    /// Ceiling on `t1 - t0` for a single submission.  Drain work scales with
    /// the step span, so without a cap one cheap `Submit` frame (`t1` near
    /// `i64::MAX`) buys an effectively unbounded drain; spans over the cap are
    /// refused with a typed `BadPayload` error.
    pub max_steps_per_submit: i64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            admission: None,
            drain_interval: Duration::from_millis(2),
            record: None,
            assumed_window_micros: 50.0,
            max_sessions: 64,
            max_steps_per_submit: 1 << 20,
        }
    }
}

/// A served `(app, geometry)` pair — one compiled session, one drain queue.
/// Mirrors the replay harness's dispatch so live serving and trace replay
/// route through identical presets (and therefore identical registry keys).
enum AnyServer {
    Heat2d(StencilServer<f64, HeatKernel<2>, 2>),
    Life(StencilServer<u8, LifeKernel, 2>),
    Wave3d(StencilServer<f64, WaveKernel, 3>),
    HeatGiant1d(StencilServer<f64, HeatKernel<1>, 1>),
}

macro_rules! with_server {
    ($any:expr, $srv:ident => $body:expr) => {
        match $any {
            AnyServer::Heat2d($srv) => $body,
            AnyServer::Life($srv) => $body,
            AnyServer::Wave3d($srv) => $body,
            AnyServer::HeatGiant1d($srv) => $body,
        }
    };
}

/// One queued ticket's bookkeeping.  A sharded group occupies one entry per
/// scheduler ticket it actually created (the lead plus however many member
/// tiles the shard plan produced — which core clamps to the grid extent, so
/// the count is measured from the queue, never assumed), all sharing the
/// lead's request id.
struct QueuedTicket {
    request: u64,
    t1: i64,
    lead: bool,
}

/// The immutable identity of a negotiated session, readable without any lock,
/// plus its mutable serving state behind the session's own mutex.
struct SessionSlot {
    app: TraceApp,
    geometry: Vec<u64>,
    chunk: i64,
    inner: Mutex<SessionInner>,
}

struct SessionInner {
    server: AnyServer,
    queued: Vec<QueuedTicket>,
    /// Calibrated cost of one dispatch window in microseconds (EWMA over
    /// measured drains, seeded by `ServeConfig::assumed_window_micros`).
    cost_ewma_micros: f64,
    /// `SessionStats::runs` at the last calibration, so each drain's window
    /// delta comes from the session's own counters.
    calibrated_runs: u64,
}

/// Sentinel owner for a request whose client disconnected: the drain completes
/// the work (it is already in the scheduler's queue) but the result is
/// discarded instead of stored.
const ORPHANED: u64 = u64::MAX;

struct ResultPayload {
    elem: ElemType,
    t1: i64,
    slice_len: u64,
    bytes: Vec<u8>,
}

enum ReqState {
    Queued,
    Done(ResultPayload),
    Failed { code: ErrorCode, detail: String },
}

struct Request {
    conn: u64,
    state: ReqState,
}

#[derive(Default)]
struct State {
    sessions: Vec<Arc<SessionSlot>>,
    session_ids: HashMap<(TraceApp, Vec<u64>, i64), u32>,
    requests: HashMap<u64, Request>,
    next_request: u64,
    /// Logical arrival clock for record mode: one tick per admitted submission.
    arrival_clock: u64,
    record: Vec<TraceRecord>,
    record_chunk: Option<i64>,
}

/// Live connections, so shutdown can fail their sockets and join the workers.
#[derive(Default)]
struct ConnTable {
    streams: HashMap<u64, TcpStream>,
    workers: Vec<JoinHandle<()>>,
}

struct Shared {
    config: ServeConfig,
    state: Mutex<State>,
    conns: Mutex<ConnTable>,
    work: Condvar,
    shutdown: AtomicBool,
    next_conn: AtomicU64,
}

/// A running server; dropping it does **not** stop the threads — call
/// [`shutdown`](Server::shutdown).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    drain: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept and drain threads, and returns immediately.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            state: Mutex::new(State::default()),
            conns: Mutex::new(ConnTable::default()),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_conn: AtomicU64::new(0),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("pochoir-serve-accept".into())
                .spawn(move || accept_loop(listener, shared))?
        };
        let drain = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("pochoir-serve-drain".into())
                .spawn(move || drain_loop(shared))?
        };
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            drain: Some(drain),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the service and joins every thread it owns: the shutdown flag is
    /// raised, every live connection socket is shut down so workers blocked in
    /// a read or write fail out and retire their own chains, the workers and
    /// the accept thread are joined, the drain thread finishes whatever is
    /// still queued and is joined, and only then — with no writer left — is
    /// the record trace written (if recording).
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work.notify_all();
        let (streams, workers) = {
            let mut conns = lock(&self.shared.conns);
            (
                std::mem::take(&mut conns.streams),
                std::mem::take(&mut conns.workers),
            )
        };
        for stream in streams.values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for handle in workers {
            let _ = handle.join();
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.shared.work.notify_all();
        if let Some(h) = self.drain.take() {
            let _ = h.join();
        }
        if self.shared.config.record.is_some() {
            let mut state = lock(&self.shared.state);
            write_record(&self.shared, &mut state);
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept errors (EMFILE under a connection flood
                // is the canonical one) must not busy-spin this thread.
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        Runtime::global().note_net_connections(1);
        let conn = shared.next_conn.fetch_add(1, Ordering::SeqCst);
        let worker_shared = Arc::clone(&shared);
        let hook = stream.try_clone().ok();
        // Register under the connection-table lock: shutdown takes that lock
        // after raising the flag, so it either sees this connection's socket
        // and handle, or this re-check sees the flag — never neither.
        let mut conns = lock(&shared.conns);
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let spawned = std::thread::Builder::new()
            .name("pochoir-serve-conn".into())
            .spawn(move || {
                connection_loop(stream, conn, &worker_shared);
                orphan_connection(&worker_shared, conn);
                lock(&worker_shared.conns).streams.remove(&conn);
            });
        if let Ok(handle) = spawned {
            if let Some(stream) = hook {
                conns.streams.insert(conn, stream);
            }
            // Reap handles of workers that already exited so the table tracks
            // live connections, not connection history.
            conns.workers.retain(|h| !h.is_finished());
            conns.workers.push(handle);
        }
    }
}

/// Retires a disconnected client's chain: finished results are dropped,
/// still-queued requests are marked orphaned so the drain discards theirs.
/// No other tenant's state is touched.
fn orphan_connection(shared: &Shared, conn: u64) {
    let mut state = lock(&shared.state);
    let mine: Vec<u64> = state
        .requests
        .iter()
        .filter(|(_, r)| r.conn == conn)
        .map(|(&id, _)| id)
        .collect();
    for id in mine {
        let finished = matches!(
            state.requests[&id].state,
            ReqState::Done(_) | ReqState::Failed { .. }
        );
        if finished {
            state.requests.remove(&id);
        } else if let Some(r) = state.requests.get_mut(&id) {
            r.conn = ORPHANED;
        }
    }
}

fn connection_loop(mut stream: TcpStream, conn: u64, shared: &Shared) {
    let rt = Runtime::global();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let frame = match read_frame(&mut stream) {
            Ok((frame, bytes)) => {
                rt.note_net_frames_in(1, bytes);
                frame
            }
            Err(ReadError::Eof) | Err(ReadError::Io(_)) => return,
            Err(ReadError::Frame(e)) => {
                // The stream may be unframed past this point (e.g. an
                // oversized prefix) — answer the typed error, then close.
                rt.note_net_protocol_errors(1);
                let _ = send(
                    &mut stream,
                    &Frame::Error {
                        code: e.code(),
                        detail: e.to_string(),
                    },
                );
                return;
            }
        };
        let response = match frame {
            Frame::Hello { version } => {
                if version == PROTOCOL_VERSION {
                    Frame::HelloAck {
                        version: PROTOCOL_VERSION,
                    }
                } else {
                    rt.note_net_protocol_errors(1);
                    let _ = send(
                        &mut stream,
                        &Frame::Error {
                            code: ErrorCode::VersionMismatch,
                            detail: format!(
                                "server speaks version {PROTOCOL_VERSION}, client sent {version}"
                            ),
                        },
                    );
                    return;
                }
            }
            Frame::Negotiate {
                app,
                geometry,
                chunk,
            } => handle_negotiate(shared, app, geometry, chunk),
            Frame::Submit {
                session,
                tenant,
                t0,
                t1,
                weight,
                deadline,
                elem,
                grid,
            } => handle_submit(
                shared, conn, session, tenant, t0, t1, weight, deadline, elem, &grid,
            ),
            Frame::Poll { request } => handle_poll(shared, conn, request),
            Frame::Fetch { request } => handle_fetch(shared, conn, request),
            Frame::Flush => {
                let mut state = lock(&shared.state);
                let records = write_record(shared, &mut state);
                Frame::Flushed { records }
            }
            Frame::Close => return,
            // Server-to-client opcodes arriving at the server are a protocol
            // violation from a confused peer.
            other => {
                rt.note_net_protocol_errors(1);
                Frame::Error {
                    code: ErrorCode::BadFrame,
                    detail: format!("unexpected client frame: {other:?}"),
                }
            }
        };
        if !send(&mut stream, &response) {
            return;
        }
    }
}

/// Writes one frame, folding the byte count into the runtime metrics; `false`
/// means the peer is gone.
fn send(stream: &mut TcpStream, frame: &Frame) -> bool {
    match write_frame(stream, frame) {
        Ok(bytes) => {
            Runtime::global().note_net_frames_out(1, bytes);
            true
        }
        Err(_) => false,
    }
}

/// Dense time slices a `Submit` grid payload carries for `app` (the wave
/// stencil is second-order in time and needs three).
fn submit_slices(app: TraceApp) -> u64 {
    match app {
        TraceApp::Wave3d => 3,
        TraceApp::Heat2d | TraceApp::Life | TraceApp::HeatGiant1d => 2,
    }
}

fn handle_negotiate(shared: &Shared, app: TraceApp, geometry: Vec<u64>, chunk: i64) -> Frame {
    if chunk <= 0 {
        return Frame::Error {
            code: ErrorCode::BadPayload,
            detail: format!("chunk must be positive, got {chunk}"),
        };
    }
    if geometry.iter().any(|&g| g == 0 || g > (1 << 32)) {
        return Frame::Error {
            code: ErrorCode::BadPayload,
            detail: format!("geometry extents must be in 1..=2^32, got {geometry:?}"),
        };
    }
    // A geometry whose submit payload cannot fit in one frame can never be
    // legally used, so refuse it before compiling anything for it.
    let payload_bytes = geometry.iter().map(|&g| g as u128).product::<u128>()
        * submit_slices(app) as u128
        * ElemType::for_app(app).size() as u128;
    if payload_bytes > MAX_FRAME as u128 {
        return Frame::Error {
            code: ErrorCode::BadPayload,
            detail: format!(
                "geometry {geometry:?} needs {payload_bytes}-byte submit payloads, \
                 over the {MAX_FRAME}-byte frame ceiling"
            ),
        };
    }
    let mut state = lock(&shared.state);
    let key = (app, geometry.clone(), chunk);
    if let Some(&id) = state.session_ids.get(&key) {
        return Frame::SessionAck {
            session: id,
            window: chunk,
        };
    }
    if state.sessions.len() >= shared.config.max_sessions {
        return Frame::Error {
            code: ErrorCode::Shed,
            detail: format!(
                "session table is full ({} live sessions); re-join an existing \
                 geometry or raise --max-sessions",
                state.sessions.len()
            ),
        };
    }
    let server = build_server(app, &geometry, chunk, shared.config.admission);
    let id = state.sessions.len() as u32;
    state.sessions.push(Arc::new(SessionSlot {
        app,
        geometry,
        chunk,
        inner: Mutex::new(SessionInner {
            server,
            queued: Vec::new(),
            cost_ewma_micros: shared.config.assumed_window_micros,
            calibrated_runs: 0,
        }),
    }));
    state.session_ids.insert(key, id);
    Frame::SessionAck {
        session: id,
        window: chunk,
    }
}

/// Builds the session's server through the same presets the replay harness
/// uses, so live serving and trace replay share registry keys (compile-once
/// across both worlds) and the giant route pins its tile count.
fn build_server(
    app: TraceApp,
    geometry: &[u64],
    chunk: i64,
    admission: Option<AdmissionPolicy>,
) -> AnyServer {
    let server = match app {
        TraceApp::Heat2d => {
            AnyServer::Heat2d(heat::serve_2d(traffic::usizes::<2>(geometry), chunk))
        }
        TraceApp::Life => AnyServer::Life(life::serve(traffic::usizes::<2>(geometry), chunk)),
        TraceApp::Wave3d => AnyServer::Wave3d(wave::serve(traffic::usizes::<3>(geometry), chunk)),
        TraceApp::HeatGiant1d => AnyServer::HeatGiant1d(StencilServer::new(
            StencilSpec::new(heat::shape::<1>()),
            HeatKernel::<1>::default(),
            ExecutionPlan::trap()
                .with_coarsening(Coarsening::none())
                .with_sharding(Sharding::Tiles(GIANT_TILES)),
            traffic::usizes::<1>(geometry),
            chunk,
        )),
    };
    match (server, admission) {
        (server, None) => server,
        (AnyServer::Heat2d(s), Some(p)) => AnyServer::Heat2d(s.with_admission_policy(p)),
        (AnyServer::Life(s), Some(p)) => AnyServer::Life(s.with_admission_policy(p)),
        (AnyServer::Wave3d(s), Some(p)) => AnyServer::Wave3d(s.with_admission_policy(p)),
        (AnyServer::HeatGiant1d(s), Some(p)) => AnyServer::HeatGiant1d(s.with_admission_policy(p)),
    }
}

/// Deserialized grid, one arm per served array shape.
enum Built {
    F64x2(PochoirArray<f64, 2>),
    U8x2(PochoirArray<u8, 2>),
    F64x3(PochoirArray<f64, 3>),
    F64x1(PochoirArray<f64, 1>),
}

#[allow(clippy::too_many_arguments)]
fn handle_submit(
    shared: &Shared,
    conn: u64,
    session: u32,
    tenant: u32,
    t0: i64,
    t1: i64,
    weight: u32,
    deadline: Deadline,
    elem: ElemType,
    grid: &[u8],
) -> Frame {
    let slot = {
        let state = lock(&shared.state);
        match state.sessions.get(session as usize) {
            Some(slot) => Arc::clone(slot),
            None => {
                return Frame::Error {
                    code: ErrorCode::UnknownSession,
                    detail: format!("session {session} was never negotiated"),
                }
            }
        }
    };
    if elem != ElemType::for_app(slot.app) {
        return Frame::Error {
            code: ErrorCode::BadPayload,
            detail: format!(
                "app {} takes {:?} grids, frame carries {:?}",
                slot.app.as_str(),
                ElemType::for_app(slot.app),
                elem
            ),
        };
    }
    let span = match t1.checked_sub(t0) {
        Some(span) if span >= 0 => span,
        _ => {
            return Frame::Error {
                code: ErrorCode::BadPayload,
                detail: format!("t1 {t1} precedes t0 {t0}"),
            }
        }
    };
    if span > shared.config.max_steps_per_submit {
        return Frame::Error {
            code: ErrorCode::BadPayload,
            detail: format!(
                "span {span} steps exceeds the per-submission ceiling of {} \
                 (split the request or raise --max-steps)",
                shared.config.max_steps_per_submit
            ),
        };
    }

    // Rebuild the array without any lock held (a cell-by-cell fill of a large
    // grid must stall neither the drain thread nor other connections).
    let built = match slot.app {
        TraceApp::Heat2d => grid_from_bytes::<f64, 2>(
            traffic::usizes::<2>(&slot.geometry),
            2,
            Boundary::Periodic,
            grid,
        )
        .map(Built::F64x2),
        TraceApp::Life => grid_from_bytes::<u8, 2>(
            traffic::usizes::<2>(&slot.geometry),
            2,
            Boundary::Periodic,
            grid,
        )
        .map(Built::U8x2),
        TraceApp::Wave3d => grid_from_bytes::<f64, 3>(
            traffic::usizes::<3>(&slot.geometry),
            3,
            Boundary::Constant(0.0),
            grid,
        )
        .map(Built::F64x3),
        TraceApp::HeatGiant1d => grid_from_bytes::<f64, 1>(
            traffic::usizes::<1>(&slot.geometry),
            2,
            Boundary::Periodic,
            grid,
        )
        .map(Built::F64x1),
    };
    let built = match built {
        Ok(b) => b,
        Err(detail) => {
            return Frame::Error {
                code: ErrorCode::BadPayload,
                detail,
            }
        }
    };

    // Register the request before the tickets exist: the drain thread only
    // pairs results with requests it can find in the table, so the entry must
    // be visible the moment the session queue is.
    let request = {
        let mut state = lock(&shared.state);
        let id = state.next_request;
        state.next_request += 1;
        state.requests.insert(
            id,
            Request {
                conn,
                state: ReqState::Queued,
            },
        );
        id
    };

    let windows_needed = windows_of(t0, t1, slot.chunk);
    let submitted: Result<Option<u64>, ServeError> = {
        let mut inner = lock(&slot.inner);
        let logical_deadline = match deadline {
            Deadline::None => None,
            Deadline::Logical(ticks) => Some(ticks),
            Deadline::WallMicros(us) => {
                Some(wall_to_ticks(us, inner.cost_ewma_micros, windows_needed))
            }
        };
        let opts = SubmitOptions {
            weight,
            deadline: logical_deadline,
        };
        let before = with_server!(&inner.server, s => s.pending());
        let outcome = match (&mut inner.server, built) {
            (AnyServer::Heat2d(s), Built::F64x2(a)) => {
                s.try_submit_with(a, t0, t1, opts).map(|_| ())
            }
            (AnyServer::Life(s), Built::U8x2(a)) => s.try_submit_with(a, t0, t1, opts).map(|_| ()),
            (AnyServer::Wave3d(s), Built::F64x3(a)) => {
                s.try_submit_with(a, t0, t1, opts).map(|_| ())
            }
            (AnyServer::HeatGiant1d(s), Built::F64x1(a)) => {
                s.try_submit_sharded(a, t0, t1, opts).map(|_| ())
            }
            // Unreachable in practice: `built` was derived from the session's
            // own app a few lines up.
            _ => {
                drop(inner);
                lock(&shared.state).requests.remove(&request);
                return Frame::Error {
                    code: ErrorCode::BadPayload,
                    detail: "grid/session element type mismatch".to_string(),
                };
            }
        };
        outcome.map(|()| {
            // One bookkeeping entry per scheduler ticket the submission
            // actually created — measured, because the shard plan may clamp
            // the giant tile count below its configured K for small extents.
            let members = with_server!(&inner.server, s => s.pending()).saturating_sub(before);
            debug_assert!(members >= 1, "an admitted submission queues a ticket");
            inner.queued.push(QueuedTicket {
                request,
                t1,
                lead: true,
            });
            for _ in 1..members {
                inner.queued.push(QueuedTicket {
                    request,
                    t1,
                    lead: false,
                });
            }
            logical_deadline
        })
    };
    let logical_deadline = match submitted {
        Ok(deadline) => deadline,
        Err(e) => {
            lock(&shared.state).requests.remove(&request);
            let (code, detail) = wire_error(&e);
            return Frame::Error { code, detail };
        }
    };

    let mut state = lock(&shared.state);
    if shared.config.record.is_some() {
        // The canonical trace format normalizes t0 to 0 and carries one chunk
        // per trace; submissions that fit are recorded, others pass through
        // unlogged (they still execute).
        let chunk_ok = match state.record_chunk {
            None => true,
            Some(c) => c == slot.chunk,
        };
        if t0 == 0 && chunk_ok {
            state.record_chunk = Some(slot.chunk);
            state.arrival_clock += 1;
            let arrival_tick = state.arrival_clock;
            state.record.push(TraceRecord {
                tenant,
                app: slot.app,
                geometry: slot.geometry.clone(),
                window: t1,
                weight: weight.max(1),
                deadline: logical_deadline,
                arrival_tick,
            });
        }
    }
    shared.work.notify_all();
    Frame::Submitted { request }
}

fn windows_of(t0: i64, t1: i64, chunk: i64) -> u64 {
    let span = (t1 - t0).max(0) as u64;
    span.div_ceil(chunk.max(1) as u64).max(1)
}

/// Converts a wall-clock budget to drain ticks via the calibrated per-window
/// cost; never below the ticks the submission itself needs (a budget that
/// cannot even cover its own work is clamped, and the scheduler's unmeetable-
/// deadline policy decides whether to shed it).
fn wall_to_ticks(wall_micros: u64, cost_micros: f64, windows_needed: u64) -> u64 {
    let ticks = (wall_micros as f64 / cost_micros.max(1e-3)).floor() as u64;
    ticks.max(windows_needed)
}

fn handle_poll(shared: &Shared, conn: u64, request: u64) -> Frame {
    let state = lock(&shared.state);
    match state.requests.get(&request) {
        None => Frame::Error {
            code: ErrorCode::UnknownRequest,
            detail: format!("request {request} is unknown (never submitted, fetched, or retired)"),
        },
        Some(r) if r.conn != conn => Frame::Error {
            code: ErrorCode::UnknownRequest,
            detail: format!("request {request} belongs to another connection"),
        },
        Some(r) => Frame::Status {
            status: match &r.state {
                ReqState::Queued => RequestStatus::Pending,
                ReqState::Done(_) => RequestStatus::Done,
                ReqState::Failed { code, detail } => RequestStatus::Failed {
                    code: *code,
                    detail: detail.clone(),
                },
            },
        },
    }
}

fn handle_fetch(shared: &Shared, conn: u64, request: u64) -> Frame {
    let mut state = lock(&shared.state);
    match state.requests.get(&request) {
        None => {
            return Frame::Error {
                code: ErrorCode::UnknownRequest,
                detail: format!("request {request} is unknown"),
            }
        }
        Some(r) if r.conn != conn => {
            return Frame::Error {
                code: ErrorCode::UnknownRequest,
                detail: format!("request {request} belongs to another connection"),
            }
        }
        Some(r) if matches!(r.state, ReqState::Queued) => {
            return Frame::Error {
                code: ErrorCode::NotReady,
                detail: format!("request {request} has not finished draining"),
            }
        }
        Some(_) => {}
    }
    // A finished fetch consumes the request either way.
    let r = state.requests.remove(&request).expect("checked above");
    match r.state {
        ReqState::Done(p) => Frame::Result {
            elem: p.elem,
            t1: p.t1,
            slice_len: p.slice_len,
            payload: p.bytes,
        },
        ReqState::Failed { code, detail } => Frame::Error { code, detail },
        ReqState::Queued => unreachable!("queued requests returned NotReady above"),
    }
}

/// Writes the recorded trace in canonical form; returns total records recorded.
fn write_record(shared: &Shared, state: &mut State) -> u64 {
    let Some(record) = &shared.config.record else {
        return 0;
    };
    if state.record.is_empty() {
        return 0;
    }
    let trace = Trace {
        name: record.name.clone(),
        seed: record.seed,
        chunk: state.record_chunk.unwrap_or(1),
        epoch: record.epoch.max(1),
        records: state.record.clone(),
    };
    if let Err(e) = std::fs::write(&record.path, trace.emit()) {
        eprintln!("pochoir-serve: cannot write {}: {e}", record.path.display());
    }
    state.record.len() as u64
}

fn drain_loop(shared: Arc<Shared>) {
    loop {
        // Snapshot the session list (cheap Arc clones), then drain each busy
        // session under its own lock only: submits, polls, and fetches on the
        // global state lock keep flowing while a session computes.
        let sessions: Vec<Arc<SessionSlot>> = lock(&shared.state).sessions.clone();
        let mut drained_any = false;
        for slot in &sessions {
            let completions = {
                let mut inner = lock(&slot.inner);
                if inner.queued.is_empty() {
                    continue;
                }
                drain_session(&mut inner)
            };
            drained_any = true;
            store_completions(&mut lock(&shared.state), completions);
        }
        if drained_any {
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let state = lock(&shared.state);
        drop(
            shared
                .work
                .wait_timeout(state, shared.config.drain_interval)
                .unwrap_or_else(|p| p.into_inner()),
        );
    }
}

/// Drains one session through the pipelined scheduler: one payload (or `None`
/// if the drain itself failed) per queued ticket, plus the per-ticket
/// outcomes from the drain report.
fn drain_tickets<T, K, const D: usize>(
    s: &mut StencilServer<T, K, D>,
    queued: &[QueuedTicket],
) -> (Vec<Option<ResultPayload>>, Vec<TicketOutcome>)
where
    T: WireElem + Copy + Send + Sync + 'static,
    K: StencilKernel<T, D>,
{
    let results = s.try_drain().unwrap_or_default();
    let outcomes = s
        .last_drain()
        .map(|r| r.outcomes.clone())
        .unwrap_or_default();
    let payloads = queued
        .iter()
        .enumerate()
        .map(|(i, q)| {
            results.get(i).map(|grid| ResultPayload {
                elem: T::ELEM,
                t1: q.t1,
                // Dense cells per slice (snapshot order), not the padded
                // layout length.
                slice_len: grid.sizes().iter().product::<usize>() as u64,
                bytes: result_payload(grid, q.t1),
            })
        })
        .collect();
    (payloads, outcomes)
}

/// Drains one session's queue under its own lock and returns each lead
/// ticket's completion (result or typed failure) for the caller to store
/// under the global lock.  Also recalibrates the session's per-window cost
/// from the measured drain time over the
/// [`SessionStats`](pochoir_core::engine::SessionStats) `runs` delta.
fn drain_session(inner: &mut SessionInner) -> Vec<(u64, ReqState)> {
    let queued = std::mem::take(&mut inner.queued);
    let started = Instant::now();
    let (mut payloads, outcomes) = with_server!(&mut inner.server, s => drain_tickets(s, &queued));
    let elapsed_micros = started.elapsed().as_secs_f64() * 1e6;
    let runs = with_server!(&inner.server, s => s.stats().runs);
    let windows = runs.saturating_sub(inner.calibrated_runs);
    inner.calibrated_runs = runs;
    if windows > 0 {
        let measured = elapsed_micros / windows as f64;
        inner.cost_ewma_micros = 0.7 * inner.cost_ewma_micros + 0.3 * measured;
    }

    let mut completions = Vec::new();
    for (i, q) in queued.iter().enumerate() {
        if !q.lead {
            continue;
        }
        // A giant group fails if any member ticket failed; member tickets sit
        // directly behind their lead and share its request id.
        let group_failure = queued
            .iter()
            .enumerate()
            .filter(|(_, m)| m.request == q.request)
            .find_map(|(j, _)| match outcomes.get(j) {
                Some(TicketOutcome::Panicked { message }) => Some((
                    ErrorCode::TenantPanicked,
                    format!("tenant ticket {j} panicked: {message}"),
                )),
                Some(TicketOutcome::Shed { reason }) => {
                    Some((ErrorCode::Shed, format!("dropped at dispatch: {reason}")))
                }
                _ => None,
            });
        let state = match (group_failure, payloads.get_mut(i).and_then(Option::take)) {
            (Some((code, detail)), _) => ReqState::Failed { code, detail },
            (None, Some(payload)) => ReqState::Done(payload),
            (None, None) => ReqState::Failed {
                code: ErrorCode::RegistryPoisoned,
                detail: "drain failed before producing a result".to_string(),
            },
        };
        completions.push((q.request, state));
    }
    completions
}

/// Stores drained completions on their requests; orphaned requests (client
/// gone) are dropped instead.
fn store_completions(state: &mut State, completions: Vec<(u64, ReqState)>) {
    for (request, new_state) in completions {
        match state.requests.get_mut(&request) {
            Some(r) if r.conn == ORPHANED => {
                state.requests.remove(&request);
            }
            Some(r) => r.state = new_state,
            None => {}
        }
    }
}

/// Prints the resolved listen address on stdout (`listening on <addr>`), for
/// scripts that started the binary on an ephemeral port.
pub fn announce(addr: SocketAddr) {
    println!("listening on {addr}");
    let _ = io::stdout().flush();
}
