//! The blocking reactor: accept loop + one worker thread per connection + one
//! shared drain thread, all over [`std::net::TcpListener`].
//!
//! The vendored-dependency constraint rules out an async runtime, and the
//! serving layer underneath is synchronous anyway (a drain is a blocking call
//! into the pipelined scheduler), so the server is an honest thread-per-
//! connection design:
//!
//! * the **accept thread** turns each connection into a worker thread;
//! * each **connection worker** speaks the frame protocol: it decodes requests,
//!   builds arrays from wire bytes, and submits into the shared session table;
//! * the **drain thread** wakes whenever work is queued (condvar, with a
//!   timeout so a lost notification cannot stall the queue) and drains every
//!   session with pending work through
//!   [`StencilServer::try_drain`] — per-tenant panics retire only their own
//!   chain, exactly as in-process.
//!
//! Sessions are keyed `(app, geometry, chunk)` and backed by the process-global
//! session registry, so two connections negotiating the same geometry share one
//! compiled program — compile-once is preserved across the network boundary and
//! asserted by the end-to-end test.  Wall-clock deadlines are converted to the
//! scheduler's logical ticks using a per-session cost model calibrated from
//! [`SessionStats`](pochoir_core::engine::SessionStats) window counts and
//! measured drain times.
//!
//! With [`ServeConfig::record`] set, every admitted epoch-zero submission
//! appends a [`TraceRecord`]; the trace is written in the canonical emission
//! (byte-stable under parse → emit) on `Flush` frames and at shutdown, and
//! replays through the `pochoir-bench` harness to the same grid digests the
//! live clients fetched.  See `docs/protocol.md` for the full wire contract.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pochoir_core::boundary::Boundary;
use pochoir_core::engine::{
    AdmissionPolicy, Coarsening, ExecutionPlan, ServeError, Sharding, StencilServer, SubmitOptions,
    TicketOutcome,
};
use pochoir_core::grid::PochoirArray;
use pochoir_core::kernel::{StencilKernel, StencilSpec};
use pochoir_runtime::Runtime;
use pochoir_stencils::heat::HeatKernel;
use pochoir_stencils::life::LifeKernel;
use pochoir_stencils::wave::WaveKernel;
use pochoir_stencils::{heat, life, traffic, wave};
use pochoir_trace::corpus::GIANT_TILES;
use pochoir_trace::{Trace, TraceApp, TraceRecord};

use crate::protocol::{
    grid_from_bytes, read_frame, result_payload, wire_error, write_frame, Deadline, ElemType,
    ErrorCode, Frame, ReadError, RequestStatus, WireElem, PROTOCOL_VERSION,
};

/// Record-mode settings: where and how to write the trace of admitted traffic.
#[derive(Clone, Debug)]
pub struct RecordConfig {
    /// Output path for the canonical JSON trace.
    pub path: PathBuf,
    /// The trace's `name` header field.
    pub name: String,
    /// The trace's `seed` header field (provenance only; replay never draws
    /// randomness from it).
    pub seed: u64,
    /// Arrival ticks per replay epoch (`Trace::epoch`); the live server drains
    /// on demand, so this only shapes how the replay harness buckets drains.
    pub epoch: u64,
}

impl Default for RecordConfig {
    fn default() -> Self {
        RecordConfig {
            path: PathBuf::from("recorded-trace.json"),
            name: "recorded".to_string(),
            seed: 1,
            epoch: 8,
        }
    }
}

/// Server construction knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Per-tenant quotas and watermarks installed on every session's server;
    /// `None` admits everything.
    pub admission: Option<AdmissionPolicy>,
    /// How long the drain thread sleeps when no work is queued (also the upper
    /// bound on submit→drain latency if a wakeup is lost).
    pub drain_interval: Duration,
    /// Record admitted traffic as a replayable trace.
    pub record: Option<RecordConfig>,
    /// Per-window cost assumed for wall-clock deadline conversion until the
    /// first drain calibrates the session (microseconds per window).
    pub assumed_window_micros: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            admission: None,
            drain_interval: Duration::from_millis(2),
            record: None,
            assumed_window_micros: 50.0,
        }
    }
}

/// A served `(app, geometry)` pair — one compiled session, one drain queue.
/// Mirrors the replay harness's dispatch so live serving and trace replay
/// route through identical presets (and therefore identical registry keys).
enum AnyServer {
    Heat2d(StencilServer<f64, HeatKernel<2>, 2>),
    Life(StencilServer<u8, LifeKernel, 2>),
    Wave3d(StencilServer<f64, WaveKernel, 3>),
    HeatGiant1d(StencilServer<f64, HeatKernel<1>, 1>),
}

macro_rules! with_server {
    ($any:expr, $srv:ident => $body:expr) => {
        match $any {
            AnyServer::Heat2d($srv) => $body,
            AnyServer::Life($srv) => $body,
            AnyServer::Wave3d($srv) => $body,
            AnyServer::HeatGiant1d($srv) => $body,
        }
    };
}

/// One queued ticket's bookkeeping (giant groups occupy one entry per member
/// tile, sharing the lead's request id).
struct QueuedTicket {
    request: u64,
    t1: i64,
    lead: bool,
}

struct Session {
    app: TraceApp,
    geometry: Vec<u64>,
    chunk: i64,
    server: AnyServer,
    queued: Vec<QueuedTicket>,
    /// Calibrated cost of one dispatch window in microseconds (EWMA over
    /// measured drains, seeded by `ServeConfig::assumed_window_micros`).
    cost_ewma_micros: f64,
    /// `SessionStats::runs` at the last calibration, so each drain's window
    /// delta comes from the session's own counters.
    calibrated_runs: u64,
}

/// Sentinel owner for a request whose client disconnected: the drain completes
/// the work (it is already in the scheduler's queue) but the result is
/// discarded instead of stored.
const ORPHANED: u64 = u64::MAX;

struct ResultPayload {
    elem: ElemType,
    t1: i64,
    slice_len: u64,
    bytes: Vec<u8>,
}

enum ReqState {
    Queued,
    Done(ResultPayload),
    Failed { code: ErrorCode, detail: String },
}

struct Request {
    conn: u64,
    state: ReqState,
}

#[derive(Default)]
struct State {
    sessions: Vec<Session>,
    session_ids: HashMap<(TraceApp, Vec<u64>, i64), u32>,
    requests: HashMap<u64, Request>,
    next_request: u64,
    next_conn: u64,
    /// Logical arrival clock for record mode: one tick per admitted submission.
    arrival_clock: u64,
    record: Vec<TraceRecord>,
    record_chunk: Option<i64>,
}

struct Shared {
    config: ServeConfig,
    state: Mutex<State>,
    work: Condvar,
    shutdown: AtomicBool,
}

/// A running server; dropping it does **not** stop the threads — call
/// [`shutdown`](Server::shutdown).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    drain: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept and drain threads, and returns immediately.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("pochoir-serve-accept".into())
                .spawn(move || accept_loop(listener, shared))?
        };
        let drain = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("pochoir-serve-drain".into())
                .spawn(move || drain_loop(shared))?
        };
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            drain: Some(drain),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, finishes the current drain, writes the record trace
    /// (if recording), and joins both service threads.  In-flight connections
    /// see their sockets fail and retire their own chains.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.drain.take() {
            let _ = h.join();
        }
        if self.shared.config.record.is_some() {
            let mut state = lock(&self.shared.state);
            write_record(&self.shared, &mut state);
        }
    }
}

fn lock(m: &Mutex<State>) -> std::sync::MutexGuard<'_, State> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        Runtime::global().note_net_connections(1);
        let shared = Arc::clone(&shared);
        let _ = std::thread::Builder::new()
            .name("pochoir-serve-conn".into())
            .spawn(move || {
                let conn = {
                    let mut state = lock(&shared.state);
                    let id = state.next_conn;
                    state.next_conn += 1;
                    id
                };
                connection_loop(stream, conn, &shared);
                orphan_connection(&shared, conn);
            });
    }
}

/// Retires a disconnected client's chain: finished results are dropped,
/// still-queued requests are marked orphaned so the drain discards theirs.
/// No other tenant's state is touched.
fn orphan_connection(shared: &Shared, conn: u64) {
    let mut state = lock(&shared.state);
    let mine: Vec<u64> = state
        .requests
        .iter()
        .filter(|(_, r)| r.conn == conn)
        .map(|(&id, _)| id)
        .collect();
    for id in mine {
        let finished = matches!(
            state.requests[&id].state,
            ReqState::Done(_) | ReqState::Failed { .. }
        );
        if finished {
            state.requests.remove(&id);
        } else if let Some(r) = state.requests.get_mut(&id) {
            r.conn = ORPHANED;
        }
    }
}

fn connection_loop(mut stream: TcpStream, conn: u64, shared: &Shared) {
    let rt = Runtime::global();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let frame = match read_frame(&mut stream) {
            Ok((frame, bytes)) => {
                rt.note_net_frames_in(1, bytes);
                frame
            }
            Err(ReadError::Eof) | Err(ReadError::Io(_)) => return,
            Err(ReadError::Frame(e)) => {
                // The stream may be unframed past this point (e.g. an
                // oversized prefix) — answer the typed error, then close.
                rt.note_net_protocol_errors(1);
                let _ = send(
                    &mut stream,
                    &Frame::Error {
                        code: e.code(),
                        detail: e.to_string(),
                    },
                );
                return;
            }
        };
        let response = match frame {
            Frame::Hello { version } => {
                if version == PROTOCOL_VERSION {
                    Frame::HelloAck {
                        version: PROTOCOL_VERSION,
                    }
                } else {
                    rt.note_net_protocol_errors(1);
                    let _ = send(
                        &mut stream,
                        &Frame::Error {
                            code: ErrorCode::VersionMismatch,
                            detail: format!(
                                "server speaks version {PROTOCOL_VERSION}, client sent {version}"
                            ),
                        },
                    );
                    return;
                }
            }
            Frame::Negotiate {
                app,
                geometry,
                chunk,
            } => handle_negotiate(shared, app, geometry, chunk),
            Frame::Submit {
                session,
                tenant,
                t0,
                t1,
                weight,
                deadline,
                elem,
                grid,
            } => handle_submit(
                shared, conn, session, tenant, t0, t1, weight, deadline, elem, &grid,
            ),
            Frame::Poll { request } => handle_poll(shared, conn, request),
            Frame::Fetch { request } => handle_fetch(shared, conn, request),
            Frame::Flush => {
                let mut state = lock(&shared.state);
                let records = write_record(shared, &mut state);
                Frame::Flushed { records }
            }
            Frame::Close => return,
            // Server-to-client opcodes arriving at the server are a protocol
            // violation from a confused peer.
            other => {
                rt.note_net_protocol_errors(1);
                Frame::Error {
                    code: ErrorCode::BadFrame,
                    detail: format!("unexpected client frame: {other:?}"),
                }
            }
        };
        if !send(&mut stream, &response) {
            return;
        }
    }
}

/// Writes one frame, folding the byte count into the runtime metrics; `false`
/// means the peer is gone.
fn send(stream: &mut TcpStream, frame: &Frame) -> bool {
    match write_frame(stream, frame) {
        Ok(bytes) => {
            Runtime::global().note_net_frames_out(1, bytes);
            true
        }
        Err(_) => false,
    }
}

fn handle_negotiate(shared: &Shared, app: TraceApp, geometry: Vec<u64>, chunk: i64) -> Frame {
    if chunk <= 0 {
        return Frame::Error {
            code: ErrorCode::BadPayload,
            detail: format!("chunk must be positive, got {chunk}"),
        };
    }
    if geometry.iter().any(|&g| g == 0 || g > (1 << 32)) {
        return Frame::Error {
            code: ErrorCode::BadPayload,
            detail: format!("geometry extents must be in 1..=2^32, got {geometry:?}"),
        };
    }
    let mut state = lock(&shared.state);
    let key = (app, geometry.clone(), chunk);
    if let Some(&id) = state.session_ids.get(&key) {
        return Frame::SessionAck {
            session: id,
            window: chunk,
        };
    }
    let server = build_server(app, &geometry, chunk, shared.config.admission);
    let id = state.sessions.len() as u32;
    state.sessions.push(Session {
        app,
        geometry,
        chunk,
        server,
        queued: Vec::new(),
        cost_ewma_micros: shared.config.assumed_window_micros,
        calibrated_runs: 0,
    });
    state.session_ids.insert(key, id);
    Frame::SessionAck {
        session: id,
        window: chunk,
    }
}

/// Builds the session's server through the same presets the replay harness
/// uses, so live serving and trace replay share registry keys (compile-once
/// across both worlds) and the giant route pins its tile count.
fn build_server(
    app: TraceApp,
    geometry: &[u64],
    chunk: i64,
    admission: Option<AdmissionPolicy>,
) -> AnyServer {
    let server = match app {
        TraceApp::Heat2d => {
            AnyServer::Heat2d(heat::serve_2d(traffic::usizes::<2>(geometry), chunk))
        }
        TraceApp::Life => AnyServer::Life(life::serve(traffic::usizes::<2>(geometry), chunk)),
        TraceApp::Wave3d => AnyServer::Wave3d(wave::serve(traffic::usizes::<3>(geometry), chunk)),
        TraceApp::HeatGiant1d => AnyServer::HeatGiant1d(StencilServer::new(
            StencilSpec::new(heat::shape::<1>()),
            HeatKernel::<1>::default(),
            ExecutionPlan::trap()
                .with_coarsening(Coarsening::none())
                .with_sharding(Sharding::Tiles(GIANT_TILES)),
            traffic::usizes::<1>(geometry),
            chunk,
        )),
    };
    match (server, admission) {
        (server, None) => server,
        (AnyServer::Heat2d(s), Some(p)) => AnyServer::Heat2d(s.with_admission_policy(p)),
        (AnyServer::Life(s), Some(p)) => AnyServer::Life(s.with_admission_policy(p)),
        (AnyServer::Wave3d(s), Some(p)) => AnyServer::Wave3d(s.with_admission_policy(p)),
        (AnyServer::HeatGiant1d(s), Some(p)) => AnyServer::HeatGiant1d(s.with_admission_policy(p)),
    }
}

/// Session facts a submit needs, copied out so the array is rebuilt from wire
/// bytes without holding the state lock.
struct SessionMeta {
    app: TraceApp,
    geometry: Vec<u64>,
    chunk: i64,
}

/// Deserialized grid, one arm per served array shape.
enum Built {
    F64x2(PochoirArray<f64, 2>),
    U8x2(PochoirArray<u8, 2>),
    F64x3(PochoirArray<f64, 3>),
    F64x1(PochoirArray<f64, 1>),
}

#[allow(clippy::too_many_arguments)]
fn handle_submit(
    shared: &Shared,
    conn: u64,
    session: u32,
    tenant: u32,
    t0: i64,
    t1: i64,
    weight: u32,
    deadline: Deadline,
    elem: ElemType,
    grid: &[u8],
) -> Frame {
    let meta = {
        let state = lock(&shared.state);
        match state.sessions.get(session as usize) {
            Some(s) => SessionMeta {
                app: s.app,
                geometry: s.geometry.clone(),
                chunk: s.chunk,
            },
            None => {
                return Frame::Error {
                    code: ErrorCode::UnknownSession,
                    detail: format!("session {session} was never negotiated"),
                }
            }
        }
    };
    if elem != ElemType::for_app(meta.app) {
        return Frame::Error {
            code: ErrorCode::BadPayload,
            detail: format!(
                "app {} takes {:?} grids, frame carries {:?}",
                meta.app.as_str(),
                ElemType::for_app(meta.app),
                elem
            ),
        };
    }
    if t1 < t0 {
        return Frame::Error {
            code: ErrorCode::BadPayload,
            detail: format!("t1 {t1} precedes t0 {t0}"),
        };
    }

    // Rebuild the array outside the lock (a cell-by-cell fill of a large grid
    // must not stall the drain thread), then take the lock to queue it.
    let built = match meta.app {
        TraceApp::Heat2d => grid_from_bytes::<f64, 2>(
            traffic::usizes::<2>(&meta.geometry),
            2,
            Boundary::Periodic,
            grid,
        )
        .map(Built::F64x2),
        TraceApp::Life => grid_from_bytes::<u8, 2>(
            traffic::usizes::<2>(&meta.geometry),
            2,
            Boundary::Periodic,
            grid,
        )
        .map(Built::U8x2),
        TraceApp::Wave3d => grid_from_bytes::<f64, 3>(
            traffic::usizes::<3>(&meta.geometry),
            3,
            Boundary::Constant(0.0),
            grid,
        )
        .map(Built::F64x3),
        TraceApp::HeatGiant1d => grid_from_bytes::<f64, 1>(
            traffic::usizes::<1>(&meta.geometry),
            2,
            Boundary::Periodic,
            grid,
        )
        .map(Built::F64x1),
    };
    let built = match built {
        Ok(b) => b,
        Err(detail) => {
            return Frame::Error {
                code: ErrorCode::BadPayload,
                detail,
            }
        }
    };

    let mut guard = lock(&shared.state);
    let state = &mut *guard;
    let Some(sess) = state.sessions.get_mut(session as usize) else {
        return Frame::Error {
            code: ErrorCode::UnknownSession,
            detail: format!("session {session} was never negotiated"),
        };
    };
    let windows_needed = windows_of(t0, t1, meta.chunk);
    let logical_deadline = match deadline {
        Deadline::None => None,
        Deadline::Logical(ticks) => Some(ticks),
        Deadline::WallMicros(us) => Some(wall_to_ticks(us, sess.cost_ewma_micros, windows_needed)),
    };
    let opts = SubmitOptions {
        weight,
        deadline: logical_deadline,
    };
    let submitted: Result<bool, ServeError> = match (&mut sess.server, built) {
        (AnyServer::Heat2d(s), Built::F64x2(a)) => {
            s.try_submit_with(a, t0, t1, opts).map(|_| false)
        }
        (AnyServer::Life(s), Built::U8x2(a)) => s.try_submit_with(a, t0, t1, opts).map(|_| false),
        (AnyServer::Wave3d(s), Built::F64x3(a)) => {
            s.try_submit_with(a, t0, t1, opts).map(|_| false)
        }
        (AnyServer::HeatGiant1d(s), Built::F64x1(a)) => {
            s.try_submit_sharded(a, t0, t1, opts).map(|_| true)
        }
        // Unreachable in practice: `built` was derived from the session's own
        // app a few lines up.
        _ => {
            return Frame::Error {
                code: ErrorCode::BadPayload,
                detail: "grid/session element type mismatch".to_string(),
            }
        }
    };
    let sharded = match submitted {
        Ok(sharded) => sharded,
        Err(e) => {
            let (code, detail) = wire_error(&e);
            return Frame::Error { code, detail };
        }
    };

    let request = state.next_request;
    state.next_request += 1;
    let sess = state
        .sessions
        .get_mut(session as usize)
        .expect("session existed above");
    sess.queued.push(QueuedTicket {
        request,
        t1,
        lead: true,
    });
    if sharded {
        for _ in 1..GIANT_TILES {
            sess.queued.push(QueuedTicket {
                request,
                t1,
                lead: false,
            });
        }
    }
    state.requests.insert(
        request,
        Request {
            conn,
            state: ReqState::Queued,
        },
    );
    if shared.config.record.is_some() {
        // The canonical trace format normalizes t0 to 0 and carries one chunk
        // per trace; submissions that fit are recorded, others pass through
        // unlogged (they still execute).
        let chunk_ok = match state.record_chunk {
            None => true,
            Some(c) => c == meta.chunk,
        };
        if t0 == 0 && chunk_ok {
            state.record_chunk = Some(meta.chunk);
            state.arrival_clock += 1;
            let arrival_tick = state.arrival_clock;
            state.record.push(TraceRecord {
                tenant,
                app: meta.app,
                geometry: meta.geometry.clone(),
                window: t1,
                weight: weight.max(1),
                deadline: logical_deadline,
                arrival_tick,
            });
        }
    }
    shared.work.notify_all();
    Frame::Submitted { request }
}

fn windows_of(t0: i64, t1: i64, chunk: i64) -> u64 {
    let span = (t1 - t0).max(0) as u64;
    span.div_ceil(chunk.max(1) as u64).max(1)
}

/// Converts a wall-clock budget to drain ticks via the calibrated per-window
/// cost; never below the ticks the submission itself needs (a budget that
/// cannot even cover its own work is clamped, and the scheduler's unmeetable-
/// deadline policy decides whether to shed it).
fn wall_to_ticks(wall_micros: u64, cost_micros: f64, windows_needed: u64) -> u64 {
    let ticks = (wall_micros as f64 / cost_micros.max(1e-3)).floor() as u64;
    ticks.max(windows_needed)
}

fn handle_poll(shared: &Shared, conn: u64, request: u64) -> Frame {
    let state = lock(&shared.state);
    match state.requests.get(&request) {
        None => Frame::Error {
            code: ErrorCode::UnknownRequest,
            detail: format!("request {request} is unknown (never submitted, fetched, or retired)"),
        },
        Some(r) if r.conn != conn => Frame::Error {
            code: ErrorCode::UnknownRequest,
            detail: format!("request {request} belongs to another connection"),
        },
        Some(r) => Frame::Status {
            status: match &r.state {
                ReqState::Queued => RequestStatus::Pending,
                ReqState::Done(_) => RequestStatus::Done,
                ReqState::Failed { code, detail } => RequestStatus::Failed {
                    code: *code,
                    detail: detail.clone(),
                },
            },
        },
    }
}

fn handle_fetch(shared: &Shared, conn: u64, request: u64) -> Frame {
    let mut state = lock(&shared.state);
    match state.requests.get(&request) {
        None => {
            return Frame::Error {
                code: ErrorCode::UnknownRequest,
                detail: format!("request {request} is unknown"),
            }
        }
        Some(r) if r.conn != conn => {
            return Frame::Error {
                code: ErrorCode::UnknownRequest,
                detail: format!("request {request} belongs to another connection"),
            }
        }
        Some(r) if matches!(r.state, ReqState::Queued) => {
            return Frame::Error {
                code: ErrorCode::NotReady,
                detail: format!("request {request} has not finished draining"),
            }
        }
        Some(_) => {}
    }
    // A finished fetch consumes the request either way.
    let r = state.requests.remove(&request).expect("checked above");
    match r.state {
        ReqState::Done(p) => Frame::Result {
            elem: p.elem,
            t1: p.t1,
            slice_len: p.slice_len,
            payload: p.bytes,
        },
        ReqState::Failed { code, detail } => Frame::Error { code, detail },
        ReqState::Queued => unreachable!("queued requests returned NotReady above"),
    }
}

/// Writes the recorded trace in canonical form; returns total records recorded.
fn write_record(shared: &Shared, state: &mut State) -> u64 {
    let Some(record) = &shared.config.record else {
        return 0;
    };
    if state.record.is_empty() {
        return 0;
    }
    let trace = Trace {
        name: record.name.clone(),
        seed: record.seed,
        chunk: state.record_chunk.unwrap_or(1),
        epoch: record.epoch.max(1),
        records: state.record.clone(),
    };
    if let Err(e) = std::fs::write(&record.path, trace.emit()) {
        eprintln!("pochoir-serve: cannot write {}: {e}", record.path.display());
    }
    state.record.len() as u64
}

fn drain_loop(shared: Arc<Shared>) {
    let mut state = lock(&shared.state);
    loop {
        let has_work = state.sessions.iter().any(|s| !s.queued.is_empty());
        if !has_work {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let (next, _) = shared
                .work
                .wait_timeout(state, shared.config.drain_interval)
                .unwrap_or_else(|p| p.into_inner());
            state = next;
            continue;
        }
        for i in 0..state.sessions.len() {
            if state.sessions[i].queued.is_empty() {
                continue;
            }
            drain_session(&mut state, i);
        }
    }
}

/// Drains one session through the pipelined scheduler: one payload (or `None`
/// if the drain itself failed) per queued ticket, plus the per-ticket
/// outcomes from the drain report.
fn drain_tickets<T, K, const D: usize>(
    s: &mut StencilServer<T, K, D>,
    queued: &[QueuedTicket],
) -> (Vec<Option<ResultPayload>>, Vec<TicketOutcome>)
where
    T: WireElem + Copy + Send + Sync + 'static,
    K: StencilKernel<T, D>,
{
    let results = s.try_drain().unwrap_or_default();
    let outcomes = s
        .last_drain()
        .map(|r| r.outcomes.clone())
        .unwrap_or_default();
    let payloads = queued
        .iter()
        .enumerate()
        .map(|(i, q)| {
            results.get(i).map(|grid| ResultPayload {
                elem: T::ELEM,
                t1: q.t1,
                // Dense cells per slice (snapshot order), not the padded
                // layout length.
                slice_len: grid.sizes().iter().product::<usize>() as u64,
                bytes: result_payload(grid, q.t1),
            })
        })
        .collect();
    (payloads, outcomes)
}

/// Drains one session's queue and stores each lead ticket's result (or typed
/// failure) on its request; orphaned requests are dropped.  Also recalibrates
/// the session's per-window cost from the measured drain time over the
/// [`SessionStats`](pochoir_core::engine::SessionStats) `runs` delta.
fn drain_session(state: &mut State, index: usize) {
    let sess = &mut state.sessions[index];
    let queued = std::mem::take(&mut sess.queued);
    let started = Instant::now();
    let (mut payloads, outcomes) = with_server!(&mut sess.server, s => drain_tickets(s, &queued));
    let elapsed_micros = started.elapsed().as_secs_f64() * 1e6;
    let runs = with_server!(&sess.server, s => s.stats().runs);
    let windows = runs.saturating_sub(sess.calibrated_runs);
    sess.calibrated_runs = runs;
    if windows > 0 {
        let measured = elapsed_micros / windows as f64;
        sess.cost_ewma_micros = 0.7 * sess.cost_ewma_micros + 0.3 * measured;
    }

    for (i, q) in queued.iter().enumerate() {
        if !q.lead {
            continue;
        }
        // A giant group fails if any member ticket failed; member tickets sit
        // directly behind their lead and share its request id.
        let group_failure = queued
            .iter()
            .enumerate()
            .filter(|(_, m)| m.request == q.request)
            .find_map(|(j, _)| match outcomes.get(j) {
                Some(TicketOutcome::Panicked { message }) => Some((
                    ErrorCode::TenantPanicked,
                    format!("tenant ticket {j} panicked: {message}"),
                )),
                Some(TicketOutcome::Shed { reason }) => {
                    Some((ErrorCode::Shed, format!("dropped at dispatch: {reason}")))
                }
                _ => None,
            });
        if state.requests.get(&q.request).map(|r| r.conn) == Some(ORPHANED) {
            state.requests.remove(&q.request);
            continue;
        }
        if let Some(req) = state.requests.get_mut(&q.request) {
            req.state = match (group_failure, payloads.get_mut(i).and_then(Option::take)) {
                (Some((code, detail)), _) => ReqState::Failed { code, detail },
                (None, Some(payload)) => ReqState::Done(payload),
                (None, None) => ReqState::Failed {
                    code: ErrorCode::RegistryPoisoned,
                    detail: "drain failed before producing a result".to_string(),
                },
            };
        }
    }
}

/// Prints the resolved listen address on stdout (`listening on <addr>`), for
/// scripts that started the binary on an ephemeral port.
pub fn announce(addr: SocketAddr) {
    println!("listening on {addr}");
    let _ = io::stdout().flush();
}
