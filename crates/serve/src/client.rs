//! A small blocking client for the `pochoir-serve` wire protocol, plus the
//! trace-driven load generator used by the e2e tests and the bench smoke step.
//!
//! The client is deliberately dumb: one [`TcpStream`], strictly
//! request/response (every frame it sends is answered by exactly one frame),
//! no internal threads.  Anything fancier — concurrency, retries, timeouts —
//! is the caller's business, which keeps the tests honest about what crossed
//! the wire.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use pochoir_core::grid::PochoirArray;
use pochoir_stencils::traffic::{
    digest_values, heat_grid, life_grid, usizes, wave_grid, DigestBits,
};
use pochoir_trace::{Trace, TraceApp};

use crate::protocol::{
    grid_to_bytes, read_frame, write_frame, Deadline, ElemType, ErrorCode, Frame, FrameError,
    ReadError, RequestStatus, WireElem, PROTOCOL_VERSION,
};

/// Client-side failures, separating transport problems from typed server
/// rejections.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed or closed mid-exchange.
    Io(io::Error),
    /// The server's bytes did not decode as a frame.
    Frame(FrameError),
    /// The server answered with a typed error frame.
    Server {
        /// The wire error code.
        code: ErrorCode,
        /// Human-readable detail from the server.
        detail: String,
    },
    /// The server answered with a frame the protocol does not allow here.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Frame(e) => write!(f, "undecodable server frame: {e}"),
            ClientError::Server { code, detail } => {
                write!(f, "server rejected request ({code:?}): {detail}")
            }
            ClientError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ReadError> for ClientError {
    fn from(e: ReadError) -> Self {
        match e {
            ReadError::Eof => ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            ReadError::Io(e) => ClientError::Io(e),
            ReadError::Frame(e) => ClientError::Frame(e),
        }
    }
}

/// A negotiated session: the server-assigned handle plus the geometry it is
/// bound to.
#[derive(Clone, Debug)]
pub struct Session {
    /// Server-assigned session id, echoed on every submit.
    pub id: u32,
    /// The served application.
    pub app: TraceApp,
    /// Grid extents, slowest dimension first.
    pub geometry: Vec<u64>,
    /// The session's dispatch window (trace `chunk`), confirmed by the server.
    pub window: i64,
}

/// A fetched result: the raw payload slices plus enough shape to digest them.
#[derive(Clone, Debug)]
pub struct FetchedResult {
    /// Element type of the payload.
    pub elem: ElemType,
    /// The kernel-invocation horizon the result was taken at.
    pub t1: i64,
    /// Cells per time slice.
    pub slice_len: u64,
    /// `2 * slice_len * elem.size()` bytes: slices `t1-1` and `t1`.
    pub bytes: Vec<u8>,
}

impl FetchedResult {
    /// The FNV-1a digest of the payload, bit-identical to
    /// [`digest_grid`](pochoir_stencils::traffic::digest_grid) of the array
    /// the server drained.
    pub fn digest(&self) -> u64 {
        match self.elem {
            ElemType::F64 => digest_values(&decode_slices::<f64>(self)),
            ElemType::U8 => digest_values(&decode_slices::<u8>(self)),
        }
    }
}

fn decode_slices<T: WireElem + DigestBits>(r: &FetchedResult) -> Vec<Vec<T>> {
    let elem = T::ELEM.size();
    let per_slice = r.slice_len as usize * elem;
    r.bytes
        .chunks(per_slice.max(1))
        .map(|chunk| chunk.chunks(elem).map(T::take).collect())
        .collect()
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects and completes the `Hello`/`HelloAck` version handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let mut client = Client { stream };
        match client.roundtrip(&Frame::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Frame::HelloAck { .. } => Ok(client),
            other => Err(unexpected("HelloAck", &other)),
        }
    }

    /// Keeps connecting until the server answers the handshake or the timeout
    /// elapses — for scripts that race the client against server startup.
    pub fn connect_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        let started = Instant::now();
        loop {
            match Client::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) if started.elapsed() >= timeout => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Negotiates (or re-joins) the session for `(app, geometry, window)`.
    pub fn negotiate(
        &mut self,
        app: TraceApp,
        geometry: &[u64],
        window: i64,
    ) -> Result<Session, ClientError> {
        match self.roundtrip(&Frame::Negotiate {
            app,
            geometry: geometry.to_vec(),
            chunk: window,
        })? {
            Frame::SessionAck { session, window } => Ok(Session {
                id: session,
                app,
                geometry: geometry.to_vec(),
                window,
            }),
            other => Err(unexpected("SessionAck", &other)),
        }
    }

    /// Serializes `grid` and submits `[t0, t1)` on it; returns the request id.
    ///
    /// The arity mirrors the wire frame field-for-field on purpose.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_grid<T: WireElem, const D: usize>(
        &mut self,
        session: &Session,
        grid: &PochoirArray<T, D>,
        tenant: u32,
        t0: i64,
        t1: i64,
        weight: u32,
        deadline: Deadline,
    ) -> Result<u64, ClientError> {
        let frame = Frame::Submit {
            session: session.id,
            tenant,
            t0,
            t1,
            weight,
            deadline,
            elem: T::ELEM,
            grid: grid_to_bytes(grid),
        };
        match self.roundtrip(&frame)? {
            Frame::Submitted { request } => Ok(request),
            other => Err(unexpected("Submitted", &other)),
        }
    }

    /// Builds the deterministic tenant grid for `(app, geometry, tenant)` —
    /// the same construction the replay harness uses — and submits it over
    /// `[0, t1)`.
    pub fn submit_tenant(
        &mut self,
        session: &Session,
        tenant: u32,
        t1: i64,
        weight: u32,
        deadline: Deadline,
    ) -> Result<u64, ClientError> {
        match session.app {
            TraceApp::Heat2d => {
                let g = heat_grid(usizes::<2>(&session.geometry), tenant);
                self.submit_grid(session, &g, tenant, 0, t1, weight, deadline)
            }
            TraceApp::Life => {
                let g = life_grid(usizes::<2>(&session.geometry), tenant);
                self.submit_grid(session, &g, tenant, 0, t1, weight, deadline)
            }
            TraceApp::Wave3d => {
                let g = wave_grid(usizes::<3>(&session.geometry), tenant);
                self.submit_grid(session, &g, tenant, 0, t1, weight, deadline)
            }
            TraceApp::HeatGiant1d => {
                let g = heat_grid(usizes::<1>(&session.geometry), tenant);
                self.submit_grid(session, &g, tenant, 0, t1, weight, deadline)
            }
        }
    }

    /// One status probe.
    pub fn poll(&mut self, request: u64) -> Result<RequestStatus, ClientError> {
        match self.roundtrip(&Frame::Poll { request })? {
            Frame::Status { status } => Ok(status),
            other => Err(unexpected("Status", &other)),
        }
    }

    /// Polls until the request leaves `Pending` or `timeout` elapses.
    pub fn wait(&mut self, request: u64, timeout: Duration) -> Result<RequestStatus, ClientError> {
        let started = Instant::now();
        loop {
            match self.poll(request)? {
                RequestStatus::Pending if started.elapsed() < timeout => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                status => return Ok(status),
            }
        }
    }

    /// Fetches a finished result (consuming it server-side).  A request that
    /// failed comes back as [`ClientError::Server`] with the typed code.
    pub fn fetch(&mut self, request: u64) -> Result<FetchedResult, ClientError> {
        match self.roundtrip(&Frame::Fetch { request })? {
            Frame::Result {
                elem,
                t1,
                slice_len,
                payload,
            } => Ok(FetchedResult {
                elem,
                t1,
                slice_len,
                bytes: payload,
            }),
            other => Err(unexpected("Result", &other)),
        }
    }

    /// Waits for completion, then fetches; the common case.
    pub fn wait_fetch(
        &mut self,
        request: u64,
        timeout: Duration,
    ) -> Result<FetchedResult, ClientError> {
        match self.wait(request, timeout)? {
            RequestStatus::Failed { code, detail } => Err(ClientError::Server { code, detail }),
            RequestStatus::Pending => Err(ClientError::Protocol(format!(
                "request {request} still pending after {timeout:?}"
            ))),
            RequestStatus::Done => self.fetch(request),
        }
    }

    /// Asks a recording server to write its trace now; returns the record
    /// count.
    pub fn flush_record(&mut self) -> Result<u64, ClientError> {
        match self.roundtrip(&Frame::Flush)? {
            Frame::Flushed { records } => Ok(records),
            other => Err(unexpected("Flushed", &other)),
        }
    }

    /// Polite goodbye (half of the pair; dropping the stream works too).
    pub fn close(mut self) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &Frame::Close)?;
        Ok(())
    }

    fn roundtrip(&mut self, frame: &Frame) -> Result<Frame, ClientError> {
        write_frame(&mut self.stream, frame)?;
        let (reply, _) = read_frame(&mut self.stream)?;
        if let Frame::Error { code, detail } = reply {
            return Err(ClientError::Server { code, detail });
        }
        Ok(reply)
    }
}

fn unexpected(wanted: &str, got: &Frame) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, server sent {got:?}"))
}

/// Replays a trace against a live server over one connection: negotiates each
/// distinct `(app, geometry)`, submits every record's deterministic tenant
/// grid in arrival order, then polls and fetches all results.
///
/// Returns one entry per record, in trace order: `Some(digest)` for completed
/// requests, `None` for records the server shed or failed (admission control
/// at work, not a transport error).  Transport and protocol violations are
/// `Err`.
pub fn replay_trace(addr: &str, trace: &Trace) -> Result<Vec<Option<u64>>, ClientError> {
    let mut client = Client::connect_retry(addr, Duration::from_secs(10))?;
    let mut sessions: Vec<(TraceApp, Vec<u64>, Session)> = Vec::new();
    let mut submitted: Vec<Option<u64>> = Vec::with_capacity(trace.records.len());
    for rec in &trace.records {
        let session = match sessions
            .iter()
            .find(|(app, geom, _)| *app == rec.app && *geom == rec.geometry)
        {
            Some((_, _, s)) => s.clone(),
            None => {
                let s = client.negotiate(rec.app, &rec.geometry, trace.chunk)?;
                sessions.push((rec.app, rec.geometry.clone(), s.clone()));
                s
            }
        };
        let deadline = match rec.deadline {
            Some(ticks) => Deadline::Logical(ticks),
            None => Deadline::None,
        };
        match client.submit_tenant(&session, rec.tenant, rec.window, rec.weight, deadline) {
            Ok(request) => submitted.push(Some(request)),
            // Typed rejections (shed, unmeetable deadline) are data, not
            // failures: the trace replays the admitted subset.
            Err(ClientError::Server { .. }) => submitted.push(None),
            Err(e) => return Err(e),
        }
    }
    let mut digests = Vec::with_capacity(submitted.len());
    for request in submitted {
        match request {
            None => digests.push(None),
            Some(request) => match client.wait_fetch(request, Duration::from_secs(60)) {
                Ok(result) => digests.push(Some(result.digest())),
                Err(ClientError::Server { .. }) => digests.push(None),
                Err(e) => return Err(e),
            },
        }
    }
    let _ = client.close();
    Ok(digests)
}
