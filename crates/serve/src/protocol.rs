//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame on the wire is a little-endian `u32` **body length** followed by
//! the body; the body is a one-byte opcode followed by an opcode-specific
//! payload.  All integers are little-endian; strings are a `u32` length plus
//! UTF-8 bytes; grids travel as densely packed row-major time slices (exactly
//! [`PochoirArray::snapshot`](pochoir_core::grid::PochoirArray::snapshot)
//! order), one per time slice of the session's app, so a grid rebuilt from the
//! wire is bitwise-identical to the one serialized.
//!
//! The codec is hardened the way a network parser must be: [`Frame::decode`]
//! never panics, every length field is validated against the bytes actually
//! present **before** any allocation happens (a frame claiming a 4 GiB string
//! inside a 20-byte body is rejected without allocating 4 GiB), and frames
//! larger than [`MAX_FRAME`] are refused at the length prefix, before the body
//! is read.  `decode ∘ encode = id` is pinned by a property test over arbitrary
//! frames (`tests/protocol_properties.rs`).
//!
//! See `docs/protocol.md` for the full frame catalogue and the session/request
//! state machine.

use std::io::{self, Read, Write};

use pochoir_trace::TraceApp;

/// Protocol version spoken by this crate; negotiated by `Hello`/`HelloAck`.
pub const PROTOCOL_VERSION: u32 = 1;

/// Largest legal frame body in bytes (64 MiB) — enough for every grid the
/// serve presets compile (the giant 1D corpus grid is ~9.6 MiB of slices),
/// small enough that a hostile length prefix cannot balloon the process.
pub const MAX_FRAME: usize = 64 << 20;

/// Element type of a grid payload, tagged on the wire so frames are
/// self-describing (and so `decode ∘ encode = id` holds frame-locally).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElemType {
    /// IEEE-754 binary64, 8 bytes per cell, little-endian.
    F64,
    /// One byte per cell (life's `u8` states).
    U8,
}

impl ElemType {
    /// The wire tag.
    pub fn as_u8(self) -> u8 {
        match self {
            ElemType::F64 => 1,
            ElemType::U8 => 2,
        }
    }

    /// Bytes per cell on the wire.
    pub fn size(self) -> usize {
        match self {
            ElemType::F64 => 8,
            ElemType::U8 => 1,
        }
    }

    fn from_u8(tag: u8) -> Result<ElemType, FrameError> {
        match tag {
            1 => Ok(ElemType::F64),
            2 => Ok(ElemType::U8),
            other => Err(FrameError::BadPayload(format!("unknown elem tag {other}"))),
        }
    }

    /// The element type each app's grids carry.
    pub fn for_app(app: TraceApp) -> ElemType {
        match app {
            TraceApp::Life => ElemType::U8,
            TraceApp::Heat2d | TraceApp::Wave3d | TraceApp::HeatGiant1d => ElemType::F64,
        }
    }
}

/// Grid element types that can cross the wire.
pub trait WireElem: Copy + Default {
    /// This element's wire tag.
    const ELEM: ElemType;
    /// Appends the element's wire bytes.
    fn put(self, out: &mut Vec<u8>);
    /// Reads one element from `bytes` (exactly `ElemType::size` of them).
    fn take(bytes: &[u8]) -> Self;
}

impl WireElem for f64 {
    const ELEM: ElemType = ElemType::F64;
    fn put(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn take(bytes: &[u8]) -> f64 {
        f64::from_le_bytes(bytes.try_into().expect("8-byte f64"))
    }
}

impl WireElem for u8 {
    const ELEM: ElemType = ElemType::U8;
    fn put(self, out: &mut Vec<u8>) {
        out.push(self);
    }
    fn take(bytes: &[u8]) -> u8 {
        bytes[0]
    }
}

/// A submission's deadline, as requested on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Deadline {
    /// No deadline: scheduled behind all deadline work, weighted-stride order.
    None,
    /// Logical deadline in drain ticks (the serving layer's native unit).
    Logical(u64),
    /// Wall-clock budget in microseconds; the server converts it to drain ticks
    /// using its calibrated per-window cost (see `docs/protocol.md`).
    WallMicros(u64),
}

impl Deadline {
    fn encode(self, out: &mut Vec<u8>) {
        let (kind, value) = match self {
            Deadline::None => (0u8, 0u64),
            Deadline::Logical(t) => (1, t),
            Deadline::WallMicros(us) => (2, us),
        };
        out.push(kind);
        out.extend_from_slice(&value.to_le_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Deadline, FrameError> {
        let kind = r.u8()?;
        let value = r.u64()?;
        match kind {
            0 if value == 0 => Ok(Deadline::None),
            0 => Err(FrameError::BadPayload(format!(
                "deadline kind 0 carries value {value}"
            ))),
            1 => Ok(Deadline::Logical(value)),
            2 => Ok(Deadline::WallMicros(value)),
            other => Err(FrameError::BadPayload(format!(
                "unknown deadline kind {other}"
            ))),
        }
    }
}

/// Where a polled request currently stands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestStatus {
    /// Queued or draining; poll again.
    Pending,
    /// Finished; `Fetch` will return the result (and consume it).
    Done,
    /// The request failed; `Fetch` would return this same error.
    Failed {
        /// The typed wire error.
        code: ErrorCode,
        /// Human-readable detail (the underlying `ServeError`'s message).
        detail: String,
    },
}

/// Typed error codes carried by [`Frame::Error`] and [`RequestStatus::Failed`].
///
/// Codes 1–6 mirror [`ServeError`](pochoir_core::engine::ServeError) variant
/// for variant; codes 16+ are protocol-level failures that have no in-process
/// counterpart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// `ServeError::InvalidGeometry`.
    InvalidGeometry = 1,
    /// `ServeError::CompileFailed`.
    CompileFailed = 2,
    /// `ServeError::TenantPanicked`.
    TenantPanicked = 3,
    /// `ServeError::Shed` (admission control refused the request).
    Shed = 4,
    /// `ServeError::DeadlineUnmeetable`.
    DeadlineUnmeetable = 5,
    /// `ServeError::RegistryPoisoned`.
    RegistryPoisoned = 6,
    /// The frame could not be decoded (truncated or malformed payload).
    BadFrame = 16,
    /// The opcode is not part of this protocol version.
    UnknownOpcode = 17,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized = 18,
    /// The session id was never negotiated on this server.
    UnknownSession = 19,
    /// The request id is unknown (never submitted, already fetched, or retired
    /// with its disconnected owner).
    UnknownRequest = 20,
    /// The client's `Hello` version differs from [`PROTOCOL_VERSION`].
    VersionMismatch = 21,
    /// `Fetch` arrived before the request finished draining.
    NotReady = 22,
    /// The frame decoded but its contents are unusable (wrong grid byte count,
    /// wrong element type for the session's app, …).
    BadPayload = 23,
}

impl ErrorCode {
    /// The wire byte.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    fn from_u8(code: u8) -> Result<ErrorCode, FrameError> {
        Ok(match code {
            1 => ErrorCode::InvalidGeometry,
            2 => ErrorCode::CompileFailed,
            3 => ErrorCode::TenantPanicked,
            4 => ErrorCode::Shed,
            5 => ErrorCode::DeadlineUnmeetable,
            6 => ErrorCode::RegistryPoisoned,
            16 => ErrorCode::BadFrame,
            17 => ErrorCode::UnknownOpcode,
            18 => ErrorCode::Oversized,
            19 => ErrorCode::UnknownSession,
            20 => ErrorCode::UnknownRequest,
            21 => ErrorCode::VersionMismatch,
            22 => ErrorCode::NotReady,
            23 => ErrorCode::BadPayload,
            other => {
                return Err(FrameError::BadPayload(format!(
                    "unknown error code {other}"
                )))
            }
        })
    }
}

/// Maps a serving-layer error to its wire code and detail message.
pub fn wire_error(e: &pochoir_core::engine::ServeError) -> (ErrorCode, String) {
    use pochoir_core::engine::ServeError;
    let code = match e {
        ServeError::InvalidGeometry { .. } => ErrorCode::InvalidGeometry,
        ServeError::CompileFailed { .. } => ErrorCode::CompileFailed,
        ServeError::TenantPanicked { .. } => ErrorCode::TenantPanicked,
        ServeError::Shed { .. } => ErrorCode::Shed,
        ServeError::DeadlineUnmeetable { .. } => ErrorCode::DeadlineUnmeetable,
        ServeError::RegistryPoisoned => ErrorCode::RegistryPoisoned,
    };
    (code, e.to_string())
}

/// One protocol frame (either direction); see the module docs for framing.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client hello; the server answers [`Frame::HelloAck`] or a
    /// `VersionMismatch` error.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Geometry negotiation: ask for a session serving `(app, geometry)` with
    /// drain windows of `chunk` steps.  Answered by [`Frame::SessionAck`].
    Negotiate {
        /// Which serve preset backs the session.
        app: TraceApp,
        /// Grid extents, outermost first; must have exactly `app.dims()` items.
        geometry: Vec<u64>,
        /// Drain window (chunk) height in time steps; must be positive.
        chunk: i64,
    },
    /// Submit a `(array, t0, t1, weight, deadline)` request to a session.
    /// Answered by [`Frame::Submitted`] or a typed error.
    Submit {
        /// The negotiated session id.
        session: u32,
        /// Tenant id (recorded in trace records; also the client's identity for
        /// the deterministic tenant-grid convention).
        tenant: u32,
        /// First time step.
        t0: i64,
        /// Last time step (exclusive of further stepping; the result horizon).
        t1: i64,
        /// Weighted-stride share (clamped to ≥ 1 server-side).
        weight: u32,
        /// Deadline request.
        deadline: Deadline,
        /// Element type of `grid`; must match the session app's element type.
        elem: ElemType,
        /// All time slices of the input array, densely packed row-major, slice
        /// 0 first.
        grid: Vec<u8>,
    },
    /// Ask where a request stands; answered by [`Frame::Status`].
    Poll {
        /// The request id from [`Frame::Submitted`].
        request: u64,
    },
    /// Fetch (and consume) a finished request's result; answered by
    /// [`Frame::Result`], `NotReady`, or the request's typed failure.
    Fetch {
        /// The request id from [`Frame::Submitted`].
        request: u64,
    },
    /// Polite goodbye; the server closes the connection.
    Close,
    /// Force the record-mode trace to disk now; answered by [`Frame::Flushed`]
    /// (with `records: 0` when record mode is off).
    Flush,

    /// Server hello acknowledgement.
    HelloAck {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// A negotiated session handle.
    SessionAck {
        /// Session id; stable for the server's lifetime.
        session: u32,
        /// The session's drain window height (echo of the negotiated chunk).
        window: i64,
    },
    /// A submission was admitted and queued.
    Submitted {
        /// The request id to poll/fetch.
        request: u64,
    },
    /// Answer to [`Frame::Poll`].
    Status {
        /// Where the request stands.
        status: RequestStatus,
    },
    /// A finished request's result: the final two time slices (`max(t1-1, 0)`
    /// then `t1`), densely packed row-major — exactly the slices the canonical
    /// traffic digest folds.
    Result {
        /// Element type of `payload`.
        elem: ElemType,
        /// The result horizon.
        t1: i64,
        /// Cells per slice.
        slice_len: u64,
        /// Two slices' raw bytes, `2 * slice_len * elem.size()` of them.
        payload: Vec<u8>,
    },
    /// Answer to [`Frame::Flush`].
    Flushed {
        /// Trace records written (total recorded so far).
        records: u64,
    },
    /// A typed error; for request-scoped errors the connection stays usable.
    Error {
        /// The typed code.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
}

const OP_HELLO: u8 = 0x01;
const OP_NEGOTIATE: u8 = 0x02;
const OP_SUBMIT: u8 = 0x03;
const OP_POLL: u8 = 0x04;
const OP_FETCH: u8 = 0x05;
const OP_CLOSE: u8 = 0x06;
const OP_FLUSH: u8 = 0x07;
const OP_HELLO_ACK: u8 = 0x81;
const OP_SESSION_ACK: u8 = 0x82;
const OP_SUBMITTED: u8 = 0x83;
const OP_STATUS: u8 = 0x84;
const OP_RESULT: u8 = 0x85;
const OP_FLUSHED: u8 = 0x86;
const OP_ERROR: u8 = 0x8F;

/// Why a frame body failed to decode.  Every variant is a structured rejection:
/// decoding never panics and never allocates more than the bytes present.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The body ended before a fixed-size field or declared length.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes remaining in the body.
        have: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// The declared body length.
        len: usize,
    },
    /// The first body byte is not a known opcode.
    UnknownOpcode(u8),
    /// A field decoded but its value is outside the protocol (bad tag, bad
    /// UTF-8, wrong geometry arity, …).
    BadPayload(String),
    /// The body has bytes past the end of the decoded frame.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            FrameError::Oversized { len } => {
                write!(
                    f,
                    "oversized frame: {len} bytes exceeds MAX_FRAME {MAX_FRAME}"
                )
            }
            FrameError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            FrameError::BadPayload(detail) => write!(f, "bad payload: {detail}"),
            FrameError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the frame")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// The wire code a server replies with for this decode failure.
    pub fn code(&self) -> ErrorCode {
        match self {
            FrameError::Oversized { .. } => ErrorCode::Oversized,
            FrameError::UnknownOpcode(_) => ErrorCode::UnknownOpcode,
            _ => ErrorCode::BadFrame,
        }
    }
}

/// Bounds-checked little-endian reader over a frame body.
struct Reader<'a> {
    rest: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.rest.len() < n {
            return Err(FrameError::Truncated {
                needed: n,
                have: self.rest.len(),
            });
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, FrameError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A `u32`-prefixed byte string; the length is validated against the bytes
    /// actually present before any allocation.
    fn bytes(&mut self) -> Result<Vec<u8>, FrameError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String, FrameError> {
        let raw = self.bytes()?;
        String::from_utf8(raw).map_err(|_| FrameError::BadPayload("invalid UTF-8".into()))
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn app_tag(app: TraceApp) -> u8 {
    match app {
        TraceApp::Heat2d => 0,
        TraceApp::Life => 1,
        TraceApp::Wave3d => 2,
        TraceApp::HeatGiant1d => 3,
    }
}

fn app_from_tag(tag: u8) -> Result<TraceApp, FrameError> {
    Ok(match tag {
        0 => TraceApp::Heat2d,
        1 => TraceApp::Life,
        2 => TraceApp::Wave3d,
        3 => TraceApp::HeatGiant1d,
        other => return Err(FrameError::BadPayload(format!("unknown app tag {other}"))),
    })
}

impl Frame {
    /// Encodes the frame body (opcode + payload, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Hello { version } => {
                out.push(OP_HELLO);
                out.extend_from_slice(&version.to_le_bytes());
            }
            Frame::Negotiate {
                app,
                geometry,
                chunk,
            } => {
                out.push(OP_NEGOTIATE);
                out.push(app_tag(*app));
                out.push(geometry.len() as u8);
                for g in geometry {
                    out.extend_from_slice(&g.to_le_bytes());
                }
                out.extend_from_slice(&chunk.to_le_bytes());
            }
            Frame::Submit {
                session,
                tenant,
                t0,
                t1,
                weight,
                deadline,
                elem,
                grid,
            } => {
                out.push(OP_SUBMIT);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(&t0.to_le_bytes());
                out.extend_from_slice(&t1.to_le_bytes());
                out.extend_from_slice(&weight.to_le_bytes());
                deadline.encode(&mut out);
                out.push(elem.as_u8());
                put_bytes(&mut out, grid);
            }
            Frame::Poll { request } => {
                out.push(OP_POLL);
                out.extend_from_slice(&request.to_le_bytes());
            }
            Frame::Fetch { request } => {
                out.push(OP_FETCH);
                out.extend_from_slice(&request.to_le_bytes());
            }
            Frame::Close => out.push(OP_CLOSE),
            Frame::Flush => out.push(OP_FLUSH),
            Frame::HelloAck { version } => {
                out.push(OP_HELLO_ACK);
                out.extend_from_slice(&version.to_le_bytes());
            }
            Frame::SessionAck { session, window } => {
                out.push(OP_SESSION_ACK);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&window.to_le_bytes());
            }
            Frame::Submitted { request } => {
                out.push(OP_SUBMITTED);
                out.extend_from_slice(&request.to_le_bytes());
            }
            Frame::Status { status } => {
                out.push(OP_STATUS);
                match status {
                    RequestStatus::Pending => out.push(0),
                    RequestStatus::Done => out.push(1),
                    RequestStatus::Failed { code, detail } => {
                        out.push(2);
                        out.push(code.as_u8());
                        put_bytes(&mut out, detail.as_bytes());
                    }
                }
            }
            Frame::Result {
                elem,
                t1,
                slice_len,
                payload,
            } => {
                out.push(OP_RESULT);
                out.push(elem.as_u8());
                out.extend_from_slice(&t1.to_le_bytes());
                out.extend_from_slice(&slice_len.to_le_bytes());
                put_bytes(&mut out, payload);
            }
            Frame::Flushed { records } => {
                out.push(OP_FLUSHED);
                out.extend_from_slice(&records.to_le_bytes());
            }
            Frame::Error { code, detail } => {
                out.push(OP_ERROR);
                out.push(code.as_u8());
                put_bytes(&mut out, detail.as_bytes());
            }
        }
        out
    }

    /// Decodes a frame body (opcode + payload, no length prefix).  Never
    /// panics; every failure is a structured [`FrameError`], and the body must
    /// be consumed exactly (no trailing bytes).
    pub fn decode(body: &[u8]) -> Result<Frame, FrameError> {
        if body.len() > MAX_FRAME {
            return Err(FrameError::Oversized { len: body.len() });
        }
        let mut r = Reader { rest: body };
        let op = r.u8()?;
        let frame = match op {
            OP_HELLO => Frame::Hello { version: r.u32()? },
            OP_NEGOTIATE => {
                let app = app_from_tag(r.u8()?)?;
                let dims = r.u8()? as usize;
                if dims != app.dims() {
                    return Err(FrameError::BadPayload(format!(
                        "app {} takes {} extents, frame declares {dims}",
                        app.as_str(),
                        app.dims()
                    )));
                }
                let mut geometry = Vec::with_capacity(dims);
                for _ in 0..dims {
                    geometry.push(r.u64()?);
                }
                Frame::Negotiate {
                    app,
                    geometry,
                    chunk: r.i64()?,
                }
            }
            OP_SUBMIT => Frame::Submit {
                session: r.u32()?,
                tenant: r.u32()?,
                t0: r.i64()?,
                t1: r.i64()?,
                weight: r.u32()?,
                deadline: Deadline::decode(&mut r)?,
                elem: ElemType::from_u8(r.u8()?)?,
                grid: r.bytes()?,
            },
            OP_POLL => Frame::Poll { request: r.u64()? },
            OP_FETCH => Frame::Fetch { request: r.u64()? },
            OP_CLOSE => Frame::Close,
            OP_FLUSH => Frame::Flush,
            OP_HELLO_ACK => Frame::HelloAck { version: r.u32()? },
            OP_SESSION_ACK => Frame::SessionAck {
                session: r.u32()?,
                window: r.i64()?,
            },
            OP_SUBMITTED => Frame::Submitted { request: r.u64()? },
            OP_STATUS => {
                let status = match r.u8()? {
                    0 => RequestStatus::Pending,
                    1 => RequestStatus::Done,
                    2 => RequestStatus::Failed {
                        code: ErrorCode::from_u8(r.u8()?)?,
                        detail: r.string()?,
                    },
                    other => {
                        return Err(FrameError::BadPayload(format!(
                            "unknown status tag {other}"
                        )))
                    }
                };
                Frame::Status { status }
            }
            OP_RESULT => Frame::Result {
                elem: ElemType::from_u8(r.u8()?)?,
                t1: r.i64()?,
                slice_len: r.u64()?,
                payload: r.bytes()?,
            },
            OP_FLUSHED => Frame::Flushed { records: r.u64()? },
            OP_ERROR => Frame::Error {
                code: ErrorCode::from_u8(r.u8()?)?,
                detail: r.string()?,
            },
            other => return Err(FrameError::UnknownOpcode(other)),
        };
        if !r.rest.is_empty() {
            return Err(FrameError::TrailingBytes {
                extra: r.rest.len(),
            });
        }
        Ok(frame)
    }
}

/// Why reading the next frame off a stream failed.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly (EOF at a frame boundary).
    Eof,
    /// The socket failed mid-frame (including EOF inside a frame — a peer that
    /// vanished mid-submit).
    Io(io::Error),
    /// The body arrived but did not decode; the declared length was already
    /// consumed, so the stream stays framed and the connection can answer with
    /// a typed error.
    Frame(FrameError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Eof => write!(f, "connection closed"),
            ReadError::Io(e) => write!(f, "socket error: {e}"),
            ReadError::Frame(e) => write!(f, "frame error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

/// Reads one length-prefixed frame.  Returns the decoded frame and the total
/// bytes consumed (prefix + body).  A length prefix over [`MAX_FRAME`] is
/// rejected **before** the body is read or any buffer is allocated — the
/// stream is then unframed and the connection must close.
pub fn read_frame(r: &mut impl Read) -> Result<(Frame, u64), ReadError> {
    let mut prefix = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Err(ReadError::Eof),
            Ok(0) => {
                return Err(ReadError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside a frame length prefix",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(ReadError::Frame(FrameError::Oversized { len }));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(ReadError::Io)?;
    let frame = Frame::decode(&body).map_err(ReadError::Frame)?;
    Ok((frame, 4 + len as u64))
}

/// Writes one length-prefixed frame; returns the bytes written.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<u64> {
    let body = frame.encode();
    debug_assert!(body.len() <= MAX_FRAME, "outbound frame exceeds MAX_FRAME");
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(4 + body.len() as u64)
}

/// Serializes every time slice of a grid as densely packed row-major bytes —
/// the `Submit` grid payload.
pub fn grid_to_bytes<T: WireElem, const D: usize>(
    grid: &pochoir_core::grid::PochoirArray<T, D>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(grid.time_slices() * grid.slice_len() * T::ELEM.size());
    for t in 0..grid.time_slices() as i64 {
        for v in grid.snapshot(t) {
            v.put(&mut out);
        }
    }
    out
}

/// Rebuilds a grid from a `Submit` payload: `slices` dense row-major time
/// slices over `sizes`, boundary attached.  Returns a message (not a panic) if
/// the byte count is wrong.
pub fn grid_from_bytes<T: WireElem, const D: usize>(
    sizes: [usize; D],
    slices: usize,
    boundary: pochoir_core::boundary::Boundary<T, D>,
    bytes: &[u8],
) -> Result<pochoir_core::grid::PochoirArray<T, D>, String> {
    let volume: usize = sizes.iter().product();
    let elem = T::ELEM.size();
    let expected = slices * volume * elem;
    if bytes.len() != expected {
        return Err(format!(
            "grid payload is {} bytes; {:?} × {slices} slices needs {expected}",
            bytes.len(),
            sizes
        ));
    }
    let mut a =
        pochoir_core::grid::PochoirArray::with_depth(sizes, slices.saturating_sub(1).max(1));
    a.register_boundary(boundary);
    let mut cursor = 0usize;
    for t in 0..slices as i64 {
        a.fill_time_slice(t, |_| {
            let v = T::take(&bytes[cursor..cursor + elem]);
            cursor += elem;
            v
        });
    }
    Ok(a)
}

/// Extracts the `Result` payload for a drained grid: the final two time slices
/// (`max(t1-1, 0)` then `t1`), densely packed — exactly what the canonical
/// traffic digest folds.
pub fn result_payload<T: WireElem, const D: usize>(
    grid: &pochoir_core::grid::PochoirArray<T, D>,
    t1: i64,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 * grid.slice_len() * T::ELEM.size());
    for t in [(t1 - 1).max(0), t1] {
        for v in grid.snapshot(t) {
            v.put(&mut out);
        }
    }
    out
}
