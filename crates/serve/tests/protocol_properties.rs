//! Property-pins the wire codec: `decode ∘ encode` is the identity over
//! arbitrary frames, and malformed inputs — truncations, oversized length
//! prefixes, garbage bytes — are rejected with structured errors (no panic,
//! no allocation beyond the bytes present).

use pochoir_serve::protocol::{
    read_frame, Deadline, ElemType, ErrorCode, Frame, FrameError, ReadError, RequestStatus,
    MAX_FRAME,
};
use pochoir_trace::{Rng, TraceApp, TRACE_APPS};
use proptest::prelude::*;

/// Detail-string alphabet crossing ASCII, escapes, and multi-byte UTF-8.
const DETAIL_CHARS: [char; 10] = ['a', 'Z', '0', ' ', '_', '"', '\\', '\n', 'é', '🜁'];

const ERROR_CODES: [ErrorCode; 14] = [
    ErrorCode::InvalidGeometry,
    ErrorCode::CompileFailed,
    ErrorCode::TenantPanicked,
    ErrorCode::Shed,
    ErrorCode::DeadlineUnmeetable,
    ErrorCode::RegistryPoisoned,
    ErrorCode::BadFrame,
    ErrorCode::UnknownOpcode,
    ErrorCode::Oversized,
    ErrorCode::UnknownSession,
    ErrorCode::UnknownRequest,
    ErrorCode::VersionMismatch,
    ErrorCode::NotReady,
    ErrorCode::BadPayload,
];

fn arb_string(rng: &mut Rng, max_len: u64) -> String {
    (0..rng.below(max_len))
        .map(|_| DETAIL_CHARS[rng.below(DETAIL_CHARS.len() as u64) as usize])
        .collect()
}

fn arb_deadline(rng: &mut Rng) -> Deadline {
    match rng.below(3) {
        0 => Deadline::None,
        1 => Deadline::Logical(rng.below(1 << 40)),
        _ => Deadline::WallMicros(rng.below(1 << 40)),
    }
}

fn arb_status(rng: &mut Rng) -> RequestStatus {
    match rng.below(3) {
        0 => RequestStatus::Pending,
        1 => RequestStatus::Done,
        _ => RequestStatus::Failed {
            code: ERROR_CODES[rng.below(ERROR_CODES.len() as u64) as usize],
            detail: arb_string(rng, 24),
        },
    }
}

/// Expands one proptest-drawn seed into an arbitrary valid frame (the vendored
/// proptest has no recursive/collection strategies; a seeded expansion covers
/// the same space reproducibly).
fn arb_frame(seed: u64) -> Frame {
    let mut rng = Rng::new(seed ^ 0x0DDC_0FFE_E5E5_AA55);
    match rng.below(14) {
        0 => Frame::Hello {
            version: rng.below(1 << 32) as u32,
        },
        1 => {
            let app = TRACE_APPS[rng.below(TRACE_APPS.len() as u64) as usize];
            Frame::Negotiate {
                app,
                geometry: (0..app.dims()).map(|_| rng.below(1 << 40)).collect(),
                chunk: rng.below(1 << 16) as i64,
            }
        }
        2 => {
            let elem = if rng.below(2) == 0 {
                ElemType::F64
            } else {
                ElemType::U8
            };
            Frame::Submit {
                session: rng.below(1 << 16) as u32,
                tenant: rng.below(1 << 20) as u32,
                t0: rng.below(1 << 10) as i64 - 16,
                t1: rng.below(1 << 10) as i64,
                weight: rng.below(1 << 8) as u32,
                deadline: arb_deadline(&mut rng),
                elem,
                grid: (0..rng.below(256)).map(|_| rng.below(256) as u8).collect(),
            }
        }
        3 => Frame::Poll {
            request: rng.below(1 << 48),
        },
        4 => Frame::Fetch {
            request: rng.below(1 << 48),
        },
        5 => Frame::Close,
        6 => Frame::Flush,
        7 => Frame::HelloAck {
            version: rng.below(1 << 32) as u32,
        },
        8 => Frame::SessionAck {
            session: rng.below(1 << 16) as u32,
            window: rng.below(1 << 16) as i64,
        },
        9 => Frame::Submitted {
            request: rng.below(1 << 48),
        },
        10 => Frame::Status {
            status: arb_status(&mut rng),
        },
        11 => Frame::Result {
            elem: ElemType::F64,
            t1: rng.below(1 << 16) as i64,
            slice_len: rng.below(1 << 20),
            payload: (0..rng.below(256)).map(|_| rng.below(256) as u8).collect(),
        },
        12 => Frame::Flushed {
            records: rng.below(1 << 32),
        },
        _ => Frame::Error {
            code: ERROR_CODES[rng.below(ERROR_CODES.len() as u64) as usize],
            detail: arb_string(&mut rng, 48),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The round trip every connection relies on: decoding an encoded frame
    /// reproduces the value exactly.
    #[test]
    fn decode_encode_is_identity(seed in 0u64..u64::MAX) {
        let frame = arb_frame(seed);
        let decoded = Frame::decode(&frame.encode());
        prop_assert_eq!(decoded.as_ref(), Ok(&frame));
    }

    /// Every truncation of a valid body is a structured rejection: an `Err`
    /// (never a panic), except prefixes that happen to be shorter valid frames
    /// (impossible here: the codec rejects trailing bytes, so a strict prefix
    /// that decodes would contradict full-body decoding — assert that too).
    #[test]
    fn truncations_are_structured_rejections(seed in 0u64..u64::MAX, cut in 0usize..4096) {
        let body = arb_frame(seed).encode();
        prop_assume!(!body.is_empty());
        let cut = cut % body.len(); // strict prefix
        let result = Frame::decode(&body[..cut]);
        prop_assert!(result.is_err(), "strict prefix of len {cut} decoded: {result:?}");
    }

    /// Garbage never panics: either it happens to decode, or it fails with a
    /// structured error.  (The decoder validates every length field against
    /// the bytes present before allocating.)
    #[test]
    fn garbage_never_panics(seed in 0u64..u64::MAX, len in 0usize..512) {
        let mut rng = Rng::new(seed ^ 0xBAD_B17E_5EED_0001);
        let body: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let _ = Frame::decode(&body); // must return, not panic
    }

    /// Flipping any single byte of a valid frame still never panics.
    #[test]
    fn bitflips_never_panic(seed in 0u64..u64::MAX, pos in 0usize..4096, flip in 1u8..255) {
        let mut body = arb_frame(seed).encode();
        prop_assume!(!body.is_empty());
        let pos = pos % body.len();
        body[pos] ^= flip;
        let _ = Frame::decode(&body);
    }
}

/// A length prefix over `MAX_FRAME` is refused at the prefix — before the body
/// is read or its buffer allocated (reading on would interpret the rest of the
/// stream as garbage; allocating would let a 4-byte prefix balloon the
/// process).
#[test]
fn oversized_prefix_rejected_before_allocation() {
    // 4 GiB declared, 4 bytes present: read_frame must fail on the prefix
    // alone without touching the (absent) body.
    let len = (u32::MAX) as usize;
    let mut stream: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF];
    match read_frame(&mut stream) {
        Err(ReadError::Frame(FrameError::Oversized { len: got })) => assert_eq!(got, len),
        other => panic!("expected Oversized, got {other:?}"),
    }
    // The prefix bytes were consumed, nothing more was demanded.
    assert!(stream.is_empty());

    // Just past the limit is rejected; the limit itself is the body's job.
    let over = (MAX_FRAME as u32 + 1).to_le_bytes();
    let mut stream: &[u8] = &over;
    assert!(matches!(
        read_frame(&mut stream),
        Err(ReadError::Frame(FrameError::Oversized { .. }))
    ));
}

/// EOF at a frame boundary is a clean close; EOF inside a prefix or body is a
/// transport error — the distinction the server uses to tell a polite
/// disconnect from a client that died mid-submit.
#[test]
fn eof_positions_are_distinguished() {
    let mut empty: &[u8] = &[];
    assert!(matches!(read_frame(&mut empty), Err(ReadError::Eof)));

    let mut partial_prefix: &[u8] = &[7, 0];
    assert!(matches!(
        read_frame(&mut partial_prefix),
        Err(ReadError::Io(_))
    ));

    let body = Frame::Flush.encode();
    let mut framed = (body.len() as u32).to_le_bytes().to_vec();
    framed.extend_from_slice(&body);
    framed.pop(); // lose the last body byte
    let mut stream: &[u8] = &framed;
    assert!(matches!(read_frame(&mut stream), Err(ReadError::Io(_))));
}

/// Trailing bytes after a decoded frame are rejected — a frame is its body,
/// exactly.
#[test]
fn trailing_bytes_rejected() {
    let mut body = Frame::Close.encode();
    body.push(0);
    assert!(matches!(
        Frame::decode(&body),
        Err(FrameError::TrailingBytes { extra: 1 })
    ));
}

/// The geometry arity check fires at decode time: a Negotiate whose extent
/// count disagrees with its app never reaches the server logic.
#[test]
fn negotiate_arity_checked_at_decode() {
    let good = Frame::Negotiate {
        app: TraceApp::Wave3d,
        geometry: vec![8, 8, 8],
        chunk: 4,
    };
    let mut body = good.encode();
    // Patch the declared dimension count (opcode, app tag, then dims byte).
    body[2] = 2;
    assert!(matches!(
        Frame::decode(&body),
        Err(FrameError::BadPayload(_))
    ));
}
