//! Resource-ceiling and small-geometry pins for `pochoir-serve`:
//!
//! * a giant session whose extent is **smaller than the configured tile
//!   count** (the shard plan clamps to the extent) keeps its per-request
//!   bookkeeping aligned — back-to-back submissions each fetch their own
//!   result, bitwise-equal to the in-process sharded run;
//! * the session table is bounded: a `Negotiate` for a new geometry past
//!   `max_sessions` is refused with a typed `Shed` error while existing
//!   geometries keep re-joining;
//! * geometries whose submit payload can never fit in a frame are refused at
//!   negotiation, and oversized step spans are refused at submit — in both
//!   cases with a typed error that leaves the connection usable.

use std::time::Duration;

use pochoir_core::engine::{Coarsening, ExecutionPlan, Sharding, StencilServer, SubmitOptions};
use pochoir_core::kernel::StencilSpec;
use pochoir_serve::protocol::Deadline;
use pochoir_serve::server::{ServeConfig, Server};
use pochoir_serve::{Client, ClientError, ErrorCode};
use pochoir_stencils::heat::HeatKernel;
use pochoir_stencils::traffic::{digest_grid, heat_grid, usizes};
use pochoir_stencils::{heat, traffic};
use pochoir_trace::corpus::GIANT_TILES;
use pochoir_trace::TraceApp;

const WINDOW: i64 = 4;
const T1: i64 = 8;

/// Extent below `GIANT_TILES`, so `Sharding::Tiles` clamps the tile count and
/// every submission creates fewer scheduler tickets than the configured K.
const SMALL_GIANT: [u64; 1] = [3];

/// In-process baselines: the same sharded preset the server builds, one
/// submission per tenant, digests taken at each group's lead ticket.
fn local_giant_digests(tenants: &[u32]) -> Vec<u64> {
    let mut server: StencilServer<f64, HeatKernel<1>, 1> = StencilServer::new(
        StencilSpec::new(heat::shape::<1>()),
        HeatKernel::<1>::default(),
        ExecutionPlan::trap()
            .with_coarsening(Coarsening::none())
            .with_sharding(Sharding::Tiles(GIANT_TILES)),
        traffic::usizes::<1>(&SMALL_GIANT),
        WINDOW,
    );
    let leads: Vec<usize> = tenants
        .iter()
        .map(|&tenant| {
            server
                .try_submit_sharded(
                    heat_grid(usizes::<1>(&SMALL_GIANT), tenant),
                    0,
                    T1,
                    SubmitOptions::default(),
                )
                .expect("in-process sharded submit")
        })
        .collect();
    let results = server.drain();
    leads
        .iter()
        .map(|&lead| digest_grid(&results[lead], T1))
        .collect()
}

#[test]
fn small_extent_giant_requests_each_get_their_own_result() {
    let server = Server::start(ServeConfig::default()).expect("bind");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let session = client
        .negotiate(TraceApp::HeatGiant1d, &SMALL_GIANT, WINDOW)
        .expect("negotiate small giant");

    // Submit all requests back-to-back before fetching anything, so several
    // groups can land in one drain batch — the regression this pins is a
    // later request being paired with an earlier request's result when the
    // bookkeeping assumed `GIANT_TILES` tickets per group.
    let tenants: Vec<u32> = (0..4).collect();
    let requests: Vec<u64> = tenants
        .iter()
        .map(|&tenant| {
            client
                .submit_tenant(&session, tenant, T1, 1, Deadline::None)
                .expect("submit")
        })
        .collect();
    let live: Vec<u64> = requests
        .iter()
        .map(|&request| {
            client
                .wait_fetch(request, Duration::from_secs(120))
                .expect("wait+fetch")
                .digest()
        })
        .collect();
    client.close().expect("close");
    server.shutdown();

    let expected = local_giant_digests(&tenants);
    assert_eq!(
        live, expected,
        "each small-extent giant request must fetch its own grid, \
         bitwise-equal to the in-process sharded run"
    );
}

#[test]
fn session_table_is_bounded_and_existing_keys_rejoin() {
    let server = Server::start(ServeConfig {
        max_sessions: 1,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let first = client
        .negotiate(TraceApp::Heat2d, &[8, 8], WINDOW)
        .expect("first geometry fills the table");
    match client.negotiate(TraceApp::Heat2d, &[10, 10], WINDOW) {
        Err(ClientError::Server { code, .. }) => assert_eq!(
            code,
            ErrorCode::Shed,
            "a full session table sheds new geometries with a typed error"
        ),
        other => panic!("expected a typed Shed rejection, got {other:?}"),
    }
    // The same key re-joins (no new compile, no new slot) and still serves.
    let again = client
        .negotiate(TraceApp::Heat2d, &[8, 8], WINDOW)
        .expect("existing geometry re-joins past the cap");
    assert_eq!(again.id, first.id);
    let request = client
        .submit_tenant(&again, 0, T1, 1, Deadline::None)
        .expect("submit on the surviving session");
    client
        .wait_fetch(request, Duration::from_secs(120))
        .expect("the bounded server still serves");
    client.close().expect("close");
    server.shutdown();
}

#[test]
fn oversized_spans_and_geometries_are_refused_typed() {
    let server = Server::start(ServeConfig::default()).expect("bind");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    // A geometry whose submit payload exceeds MAX_FRAME can never be used:
    // refused at negotiation, before anything is compiled for it.
    match client.negotiate(TraceApp::Heat2d, &[1 << 16, 1 << 16], WINDOW) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadPayload),
        other => panic!("expected BadPayload for an unsubmittable geometry, got {other:?}"),
    }

    let session = client
        .negotiate(TraceApp::Heat2d, &[8, 8], WINDOW)
        .expect("negotiate");
    // One cheap frame must not buy an unbounded drain: the step span is
    // capped with a typed error and the connection stays usable.
    match client.submit_tenant(&session, 0, i64::MAX - 1, 1, Deadline::None) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadPayload),
        other => panic!("expected BadPayload for an oversized span, got {other:?}"),
    }
    let request = client
        .submit_tenant(&session, 0, T1, 1, Deadline::None)
        .expect("a sane submit after the rejection");
    client
        .wait_fetch(request, Duration::from_secs(120))
        .expect("connection survives typed rejections");
    client.close().expect("close");
    server.shutdown();
}
