//! End-to-end pin: a live `pochoir-serve` instance answers 8 concurrent
//! clients across three geometries with results **bitwise-identical** to
//! running the same batches in-process, while compiling each geometry exactly
//! once (the process-global session registry is shared across the network
//! boundary).
//!
//! One `#[test]` on purpose: the registry-miss accounting needs the whole
//! scenario in one deterministic scope.

use std::time::Duration;

use pochoir_core::engine::serving::registry_stats;
use pochoir_core::engine::{run_batch, BatchRun, StencilServer};
use pochoir_core::grid::PochoirArray;
use pochoir_core::kernel::StencilKernel;
use pochoir_runtime::Runtime;
use pochoir_serve::protocol::Deadline;
use pochoir_serve::server::{ServeConfig, Server};
use pochoir_serve::Client;
use pochoir_stencils::traffic::{digest_grid, heat_grid, life_grid, usizes, wave_grid, DigestBits};
use pochoir_stencils::{heat, life, wave};
use pochoir_trace::TraceApp;

const WINDOW: i64 = 4;
const T1: i64 = 12;

fn geometry_of(app: TraceApp) -> Vec<u64> {
    match app {
        TraceApp::Heat2d => vec![24, 24],
        TraceApp::Life => vec![20, 20],
        TraceApp::Wave3d => vec![12, 12, 12],
        TraceApp::HeatGiant1d => unreachable!("not served in this test"),
    }
}

/// The in-process baseline: run the tenant's batch directly on the shared
/// compiled program (the same construction the live server drains through).
fn local_digest<T, K, const D: usize>(
    server: &StencilServer<T, K, D>,
    mut grid: PochoirArray<T, D>,
) -> u64
where
    T: DigestBits + Copy + Send + Sync + 'static,
    K: StencilKernel<T, D>,
{
    let mut jobs = [BatchRun {
        array: &mut grid,
        t0: 0,
        t1: T1,
    }];
    run_batch(
        server.program(),
        server.kernel(),
        &mut jobs,
        1,
        Runtime::global(),
    );
    digest_grid(&grid, T1)
}

#[test]
fn live_server_matches_in_process_bitwise_with_one_compile_per_geometry() {
    let server = Server::start(ServeConfig::default()).expect("bind ephemeral port");
    let addr = server.addr().to_string();

    let registry_before = registry_stats();

    // 8 concurrent clients, one connection each, spread over three geometries.
    let handles: Vec<_> = (0..8u32)
        .map(|tenant| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let app = match tenant % 3 {
                    0 => TraceApp::Heat2d,
                    1 => TraceApp::Life,
                    _ => TraceApp::Wave3d,
                };
                let geometry = geometry_of(app);
                let mut client = Client::connect(&addr).expect("connect");
                let session = client.negotiate(app, &geometry, WINDOW).expect("negotiate");
                assert_eq!(session.window, WINDOW);
                let request = client
                    .submit_tenant(&session, tenant, T1, 1 + tenant % 3, Deadline::None)
                    .expect("submit");
                let result = client
                    .wait_fetch(request, Duration::from_secs(120))
                    .expect("wait+fetch");
                assert_eq!(result.t1, T1);
                let cells: u64 = geometry.iter().product();
                assert_eq!(result.slice_len, cells);
                let digest = result.digest();
                client.close().expect("close");
                (tenant, app, digest)
            })
        })
        .collect();
    let live: Vec<(u32, TraceApp, u64)> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();

    // The server compiled each geometry exactly once: 3 sessions, 3 registry
    // misses, regardless of 8 concurrent negotiations racing for them.
    let after_serving = registry_stats();
    assert_eq!(
        after_serving.misses - registry_before.misses,
        3,
        "live serving must compile each of the 3 geometries exactly once"
    );

    // In-process comparison servers for the same keys: all hits, no new
    // compiles — and their direct batch runs must match the wire results
    // bitwise (the digest folds every result bit).
    let heat_server = heat::serve_2d(usizes::<2>(&geometry_of(TraceApp::Heat2d)), WINDOW);
    let life_server = life::serve(usizes::<2>(&geometry_of(TraceApp::Life)), WINDOW);
    let wave_server = wave::serve(usizes::<3>(&geometry_of(TraceApp::Wave3d)), WINDOW);
    let after_local = registry_stats();
    assert_eq!(
        after_local.misses - after_serving.misses,
        0,
        "in-process servers over the same keys must reuse the served programs"
    );
    assert_eq!(after_local.hits - after_serving.hits, 3);

    for (tenant, app, live_digest) in live {
        let expected = match app {
            TraceApp::Heat2d => local_digest(
                &heat_server,
                heat_grid(usizes::<2>(&geometry_of(app)), tenant),
            ),
            TraceApp::Life => local_digest(
                &life_server,
                life_grid(usizes::<2>(&geometry_of(app)), tenant),
            ),
            TraceApp::Wave3d => local_digest(
                &wave_server,
                wave_grid(usizes::<3>(&geometry_of(app)), tenant),
            ),
            TraceApp::HeatGiant1d => unreachable!(),
        };
        assert_eq!(
            live_digest, expected,
            "tenant {tenant} ({app:?}): wire result differs from in-process run_batch"
        );
    }

    server.shutdown();
}
