//! Network chaos pin: a client that dies mid-submit or vanishes mid-poll must
//! retire only its own work.  Well-behaved survivors sharing the server drain
//! to results bitwise-equal to a fault-free run, and the server keeps
//! accepting fresh connections afterwards.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use pochoir_serve::protocol::{
    grid_to_bytes, read_frame, write_frame, Deadline, ElemType, Frame, PROTOCOL_VERSION,
};
use pochoir_serve::server::{ServeConfig, Server};
use pochoir_serve::Client;
use pochoir_stencils::traffic::heat_grid;
use pochoir_trace::TraceApp;

const GEOMETRY: [u64; 2] = [16, 16];
const WINDOW: i64 = 4;
const T1: i64 = 8;

/// Run the three well-behaved heat tenants against a server and return their
/// digests in tenant order.
fn run_survivors(addr: &str) -> Vec<u64> {
    let handles: Vec<_> = (0..3u32)
        .map(|tenant| {
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let session = client
                    .negotiate(TraceApp::Heat2d, &GEOMETRY, WINDOW)
                    .expect("negotiate");
                let request = client
                    .submit_tenant(&session, tenant, T1, 1, Deadline::None)
                    .expect("submit");
                let result = client
                    .wait_fetch(request, Duration::from_secs(120))
                    .expect("wait+fetch");
                client.close().expect("close");
                result.digest()
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("survivor thread"))
        .collect()
}

/// Raw handshake + negotiate on a bare socket, so the test can then misbehave
/// below the `Client` abstraction.
fn raw_session(addr: &str) -> (TcpStream, u32) {
    let mut stream = TcpStream::connect(addr).expect("connect raw");
    write_frame(
        &mut stream,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
        },
    )
    .expect("hello");
    match read_frame(&mut stream).expect("hello ack").0 {
        Frame::HelloAck { .. } => {}
        other => panic!("expected HelloAck, got {other:?}"),
    }
    write_frame(
        &mut stream,
        &Frame::Negotiate {
            app: TraceApp::Heat2d,
            geometry: GEOMETRY.to_vec(),
            chunk: WINDOW,
        },
    )
    .expect("negotiate");
    match read_frame(&mut stream).expect("session ack").0 {
        Frame::SessionAck { session, .. } => (stream, session),
        other => panic!("expected SessionAck, got {other:?}"),
    }
}

/// Dies mid-submit: declares a full Submit frame, sends half of it, vanishes.
/// The server sees an unexpected EOF inside a body and must just drop the
/// connection.
fn chaos_truncated_submit(addr: &str) {
    let (mut stream, session) = raw_session(addr);
    let grid = heat_grid::<2>([16, 16], 99);
    let body = Frame::Submit {
        session,
        tenant: 99,
        t0: 0,
        t1: T1,
        weight: 1,
        deadline: Deadline::None,
        elem: ElemType::F64,
        grid: grid_to_bytes(&grid),
    }
    .encode();
    stream
        .write_all(&(body.len() as u32).to_le_bytes())
        .expect("prefix");
    stream
        .write_all(&body[..body.len() / 2])
        .expect("half body");
    stream.flush().expect("flush");
    drop(stream); // mid-frame disconnect
}

/// Dies mid-poll: submits a valid grid, polls once, then vanishes without
/// fetching.  Its queued/finished work must be orphaned, not delivered to or
/// blocked on anyone else.
fn chaos_abandoned_poll(addr: &str) {
    let (mut stream, session) = raw_session(addr);
    let grid = heat_grid::<2>([16, 16], 77);
    write_frame(
        &mut stream,
        &Frame::Submit {
            session,
            tenant: 77,
            t0: 0,
            t1: T1,
            weight: 1,
            deadline: Deadline::None,
            elem: ElemType::F64,
            grid: grid_to_bytes(&grid),
        },
    )
    .expect("submit");
    let request = match read_frame(&mut stream).expect("submitted").0 {
        Frame::Submitted { request } => request,
        other => panic!("expected Submitted, got {other:?}"),
    };
    write_frame(&mut stream, &Frame::Poll { request }).expect("poll");
    let _ = read_frame(&mut stream).expect("status");
    drop(stream); // abandons the request forever
}

#[test]
fn client_failures_retire_only_their_own_chains() {
    // Fault-free baseline on its own server instance.
    let baseline_server = Server::start(ServeConfig::default()).expect("baseline server");
    let baseline = run_survivors(&baseline_server.addr().to_string());
    baseline_server.shutdown();

    // Chaos run: the same survivors share the server with two misbehaving
    // clients injected while they work.
    let server = Server::start(ServeConfig::default()).expect("chaos server");
    let addr = server.addr().to_string();

    let chaos = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            chaos_truncated_submit(&addr);
            chaos_abandoned_poll(&addr);
        })
    };
    let survivors = run_survivors(&addr);
    chaos.join().expect("chaos thread");

    assert_eq!(
        survivors, baseline,
        "survivors must drain bitwise-equal to the fault-free run"
    );

    // The server is still healthy: a fresh client can do a full round trip.
    let mut client = Client::connect(&addr).expect("post-chaos connect");
    let session = client
        .negotiate(TraceApp::Heat2d, &GEOMETRY, WINDOW)
        .expect("post-chaos negotiate");
    let request = client
        .submit_tenant(&session, 0, T1, 1, Deadline::None)
        .expect("post-chaos submit");
    let result = client
        .wait_fetch(request, Duration::from_secs(120))
        .expect("post-chaos fetch");
    assert_eq!(
        result.digest(),
        baseline[0],
        "post-chaos result for tenant 0 must still match the baseline"
    );
    client.close().expect("close");

    server.shutdown();
}
