//! # pochoir-dsl
//!
//! The Pochoir stencil specification language embedded in Rust, reproducing Section 2 of
//! *"The Pochoir Stencil Compiler"* (SPAA 2011) and its two-phase compilation strategy.
//!
//! | Paper construct | This crate |
//! |---|---|
//! | `Pochoir_Shape_dimD name[] = {…}` | [`pochoir_shape!`] → [`Shape`](pochoir_core::shape::Shape) |
//! | `Pochoir_Array_dimD(type) name(sizes…)` | [`PochoirArray`](pochoir_core::grid::PochoirArray) |
//! | `Pochoir_Boundary_dimD … Pochoir_Boundary_End` | [`pochoir_boundary!`] → [`Boundary`](pochoir_core::boundary::Boundary) |
//! | `Pochoir_Kernel_dimD … Pochoir_Kernel_End` | [`pochoir_kernel!`] → a [`StencilKernel`](pochoir_core::kernel::StencilKernel) type |
//! | `Pochoir_dimD name(shape)` | [`Pochoir::new`] |
//! | `name.Register_Array(array)` | [`Pochoir::register_array`] |
//! | `array.Register_Boundary(bdry)` | [`Pochoir::register_boundary`] |
//! | `name.Run(T, kernel)` | [`Pochoir::run`] (Phase 2) |
//! | Phase-1 template-library execution | [`Pochoir::run_phase1`] / [`Pochoir::check`] |
//!
//! **The Pochoir Guarantee.**  The paper promises that a program that compiles and runs
//! with the Phase-1 template library will not fail when compiled by the Pochoir compiler
//! and run optimized.  In this reproduction the same promise reads: a kernel accepted by
//! the Phase-1 interpreter ([`Pochoir::check`]) produces identical results under every
//! optimized engine, which [`Pochoir::run_guaranteed`] enforces and the crate's tests
//! verify property-style.
//!
//! In place of source-to-source translation, "compilation" is monomorphization: the same
//! kernel written once against `GridAccess` is instantiated as the interior clone, the
//! boundary clone, the checking interpreter's view, and the cache-tracing view.
//!
//! ## Example (the paper's Figure 6 program)
//!
//! ```
//! use pochoir_dsl::{pochoir_kernel, pochoir_shape, Pochoir};
//! use pochoir_core::boundary::Boundary;
//!
//! const CX: f64 = 0.1;
//! const CY: f64 = 0.1;
//!
//! pochoir_kernel!(
//!     /// 2D heat kernel (Figure 6, lines 12–14).
//!     pub struct HeatFn<f64, 2> {}
//!     |_this, u, t, (x, y)| {
//!         let c = u.get(t, [x, y]);
//!         u.set(t + 1, [x, y],
//!             CX * (u.get(t, [x + 1, y]) - 2.0 * c + u.get(t, [x - 1, y]))
//!             + CY * (u.get(t, [x, y + 1]) - 2.0 * c + u.get(t, [x, y - 1]))
//!             + c);
//!     }
//! );
//!
//! let shape = pochoir_shape![(1,0,0), (0,0,0), (0,1,0), (0,-1,0), (0,0,-1), (0,0,1)];
//! let mut heat = Pochoir::<f64, 2>::with_array(shape, [64, 64]);
//! heat.register_boundary(Boundary::Periodic).unwrap();
//! heat.array_mut().unwrap().fill_time_slice(0, |x| (x[0] * x[1]) as f64);
//! heat.run_guaranteed(10, &HeatFn {}).unwrap();
//! let result = heat.array().unwrap().snapshot(heat.result_time());
//! assert_eq!(result.len(), 64 * 64);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod macros;
mod pochoir;
mod speccheck;

/// Re-export of `pochoir_core` used by the macros (and convenient for downstream users).
pub use pochoir_core as core;

pub use pochoir::{serial, Pochoir, PochoirError};
pub use speccheck::{run_checked, SpecViolation};
