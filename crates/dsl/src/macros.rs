//! Surface syntax: macros that mirror the paper's `Pochoir_Shape`, `Pochoir_Kernel` and
//! `Pochoir_Boundary` constructs (Figure 6 and Section 2).

/// Declares a stencil shape from its cells, mirroring `Pochoir_Shape_dimD`.
///
/// ```
/// use pochoir_dsl::pochoir_shape;
/// use pochoir_core::shape::Shape;
///
/// // Figure 6: Pochoir_Shape_2D 2D_five_pt[] = {{1,0,0},{0,0,0},{0,1,0},{0,-1,0},{0,0,-1},{0,0,1}};
/// let five_pt: Shape<2> = pochoir_shape![
///     (1, 0, 0), (0, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, -1), (0, 0, 1)
/// ];
/// assert_eq!(five_pt.depth(), 1);
/// ```
#[macro_export]
macro_rules! pochoir_shape {
    [ $( ( $dt:expr $(, $dx:expr)* ) ),+ $(,)? ] => {
        $crate::core::shape::Shape::must(vec![
            $( $crate::core::shape::ShapeCell::new($dt, [ $( $dx ),* ]) ),+
        ])
    };
}

/// Declares a stencil kernel type, mirroring `Pochoir_Kernel_dimD … Pochoir_Kernel_End`.
///
/// The kernel may carry named fields (the constants of the update equation); inside the
/// body they are reached through the first closure-style binder (here `this`).
///
/// ```
/// use pochoir_dsl::pochoir_kernel;
///
/// pochoir_kernel!(
///     /// The 2D heat kernel of Figure 6.
///     pub struct HeatKernel<f64, 2> { cx: f64, cy: f64 }
///     |this, a, t, (x, y)| {
///         let c = a.get(t, [x, y]);
///         a.set(t + 1, [x, y], c
///             + this.cx * (a.get(t, [x + 1, y]) - 2.0 * c + a.get(t, [x - 1, y]))
///             + this.cy * (a.get(t, [x, y + 1]) - 2.0 * c + a.get(t, [x, y - 1])));
///     }
/// );
///
/// let k = HeatKernel { cx: 0.1, cy: 0.1 };
/// let _ = &k;
/// ```
#[macro_export]
macro_rules! pochoir_kernel {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident<$t:ty, $d:literal> { $($field:ident : $fty:ty),* $(,)? }
        |$this:ident, $a:ident, $tvar:ident, ( $($coord:ident),+ $(,)? )| $body:block
    ) => {
        $(#[$meta])*
        #[derive(Clone, Debug)]
        $vis struct $name {
            $( #[allow(missing_docs)] pub $field: $fty ),*
        }

        impl $crate::core::kernel::StencilKernel<$t, $d> for $name {
            #[inline]
            fn update<A: $crate::core::view::GridAccess<$t, $d>>(
                &self,
                $a: &A,
                $tvar: i64,
                __x: [i64; $d],
            ) {
                let $this = self;
                let _ = $this;
                let [ $($coord),+ ] = __x;
                $body
            }
        }
    };
}

/// Declares a boundary function, mirroring `Pochoir_Boundary_dimD … Pochoir_Boundary_End`.
///
/// The binder receives a probe (for reading in-domain values and querying sizes), the
/// access time, and the destructured out-of-domain coordinates; the body's value supplies
/// the boundary value.
///
/// ```
/// use pochoir_dsl::pochoir_boundary;
/// use pochoir_core::boundary::Boundary;
///
/// // Figure 11(a): Dirichlet value 100 + 0.2 t.
/// let dirichlet: Boundary<f64, 2> = pochoir_boundary!(|_probe, t, (_x, _y)| 100.0 + 0.2 * t as f64);
/// ```
#[macro_export]
macro_rules! pochoir_boundary {
    ( |$probe:pat_param, $tvar:pat_param, ( $($coord:pat_param),+ $(,)? )| $body:expr ) => {
        $crate::core::boundary::Boundary::custom(
            move |$probe, $tvar, __x| {
                let [ $($coord),+ ] = __x;
                $body
            },
        )
    };
}

#[cfg(test)]
mod tests {
    use pochoir_core::boundary::Boundary;
    use pochoir_core::engine::{run, ExecutionPlan};
    use pochoir_core::grid::PochoirArray;
    use pochoir_core::kernel::StencilSpec;
    use pochoir_core::shape::{star_shape, Shape};
    use pochoir_runtime::Serial;

    #[test]
    fn shape_macro_builds_heat_shape() {
        let s: Shape<2> = pochoir_shape![
            (1, 0, 0),
            (0, 0, 0),
            (0, 1, 0),
            (0, -1, 0),
            (0, 0, -1),
            (0, 0, 1)
        ];
        assert_eq!(s.depth(), 1);
        assert_eq!(s.slopes(), [1, 1]);
        assert_eq!(s.cells().len(), 6);
    }

    #[test]
    fn shape_macro_one_dimensional() {
        let s: Shape<1> = pochoir_shape![(1, 0), (0, -1), (0, 0), (0, 1)];
        assert_eq!(s.slopes(), [1]);
    }

    pochoir_kernel!(
        /// Test kernel: 1D three-point average with a tunable centre weight.
        pub struct Avg<f64, 1> { center: f64 }
        |this, a, t, (x,)| {
            let side = (1.0 - this.center) / 2.0;
            let v = side * a.get(t, [x - 1]) + this.center * a.get(t, [x]) + side * a.get(t, [x + 1]);
            a.set(t + 1, [x], v);
        }
    );

    #[test]
    fn kernel_macro_produces_working_kernel() {
        let mut arr: PochoirArray<f64, 1> = PochoirArray::new([8]);
        arr.register_boundary(Boundary::Clamp);
        arr.fill_time_slice(0, |x| x[0] as f64);
        let spec = StencilSpec::new(star_shape::<1>(1));
        let k = Avg { center: 0.5 };
        run(
            &mut arr,
            &spec,
            &k,
            0,
            1,
            &ExecutionPlan::loops_serial(),
            &Serial,
        );
        // Interior points of a linear ramp are preserved by the averaging kernel.
        assert_eq!(arr.get(1, [4]), 4.0);
    }

    pochoir_kernel!(
        struct NoFields<u32, 2> {}
        |_this, a, t, (x, y)| {
            a.set(t + 1, [x, y], a.get(t, [x, y]) + 1);
        }
    );

    #[test]
    fn kernel_macro_without_fields() {
        let mut arr: PochoirArray<u32, 2> = PochoirArray::new([4, 4]);
        arr.register_boundary(Boundary::Periodic);
        let spec = StencilSpec::new(star_shape::<2>(1));
        run(
            &mut arr,
            &spec,
            &NoFields {},
            0,
            3,
            &ExecutionPlan::trap(),
            &Serial,
        );
        assert_eq!(arr.get(3, [1, 1]), 3);
    }

    #[test]
    fn boundary_macro_dirichlet_and_wrapping() {
        let dirichlet: Boundary<f64, 2> =
            pochoir_boundary!(|_probe, t, (_x, _y)| 100.0 + 0.2 * t as f64);
        let read = |t: i64, x: [i64; 2]| (t + x[0] + x[1]) as f64;
        assert_eq!(dirichlet.resolve(&read, [4, 4], 10, [-1, 0]), 102.0);

        // Figure 6's periodic boundary written as a custom function.
        let periodic: Boundary<f64, 2> = pochoir_boundary!(|probe, t, (x, y)| {
            let xs = probe.size(0);
            let ys = probe.size(1);
            probe.get(t, [x.rem_euclid(xs), y.rem_euclid(ys)])
        });
        assert_eq!(periodic.resolve(&read, [4, 4], 2, [-1, 5]), read(2, [3, 1]));
    }
}
