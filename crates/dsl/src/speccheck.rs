//! The Phase-1 "template library" interpreter: a slow, fully-checked executor that
//! verifies a stencil specification is Pochoir-compliant (paper, Sections 1 and 2).
//!
//! During Phase 1 the paper's template library "complains if an access to a grid point
//! during the kernel computation falls outside the region specified by the shape
//! declaration".  This module reproduces that behaviour: every kernel invocation runs
//! with a view that records the space-time offset of each access relative to the point
//! being updated and checks it against the declared [`Shape`].

use pochoir_core::grid::PochoirArray;
use pochoir_core::kernel::{StencilKernel, StencilSpec};
use pochoir_core::shape::Shape;
use pochoir_core::view::GridAccess;
use std::cell::{Cell, RefCell};
use std::fmt;

/// A violation of the Pochoir specification detected by the Phase-1 interpreter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecViolation {
    /// The kernel read an offset not covered by the declared shape.
    ReadOutsideShape {
        /// Offset in time relative to the kernel invocation.
        dt: i64,
        /// Offsets in space relative to the point being updated.
        dx: Vec<i64>,
        /// The kernel invocation (time, position) at which the violation occurred.
        at: (i64, Vec<i64>),
    },
    /// The kernel wrote somewhere other than the home cell.
    WriteNotHome {
        /// Offset in time relative to the kernel invocation.
        dt: i64,
        /// Offsets in space relative to the point being updated.
        dx: Vec<i64>,
        /// The kernel invocation (time, position) at which the violation occurred.
        at: (i64, Vec<i64>),
    },
}

impl fmt::Display for SpecViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecViolation::ReadOutsideShape { dt, dx, at } => write!(
                f,
                "kernel read offset (dt={dt}, dx={dx:?}) at invocation {at:?}, which is not covered by the declared Pochoir shape"
            ),
            SpecViolation::WriteNotHome { dt, dx, at } => write!(
                f,
                "kernel wrote offset (dt={dt}, dx={dx:?}) at invocation {at:?}; writes must target the home cell"
            ),
        }
    }
}

impl std::error::Error for SpecViolation {}

/// The checking view used by the Phase-1 interpreter.
struct SpecCheckView<'a, T: Copy, const D: usize> {
    array: &'a RefCell<&'a mut PochoirArray<T, D>>,
    shape: &'a Shape<D>,
    current: Cell<(i64, [i64; D])>,
    violations: &'a RefCell<Vec<SpecViolation>>,
}

impl<'a, T: Copy, const D: usize> SpecCheckView<'a, T, D> {
    fn offsets(&self, t: i64, x: [i64; D]) -> (i64, [i64; D]) {
        let (ct, cx) = self.current.get();
        let mut dx = [0i64; D];
        for d in 0..D {
            dx[d] = x[d] - cx[d];
        }
        (t - ct, dx)
    }

    fn record(&self, v: SpecViolation) {
        self.violations.borrow_mut().push(v);
    }
}

impl<'a, T: Copy, const D: usize> GridAccess<T, D> for SpecCheckView<'a, T, D> {
    fn get(&self, t: i64, x: [i64; D]) -> T {
        let (dt, dx) = self.offsets(t, x);
        let covered = dt <= i32::MAX as i64
            && dx.iter().all(|&d| d.abs() <= i32::MAX as i64)
            && self.shape.covers(dt as i32, dx.map(|d| d as i32));
        if !covered {
            let (ct, cx) = self.current.get();
            self.record(SpecViolation::ReadOutsideShape {
                dt,
                dx: dx.to_vec(),
                at: (ct, cx.to_vec()),
            });
        }
        self.array.borrow().get(t, x)
    }

    fn set(&self, t: i64, x: [i64; D], value: T) {
        let (dt, dx) = self.offsets(t, x);
        let is_home = dt == self.shape.home_dt() as i64 && dx.iter().all(|&d| d == 0);
        if !is_home {
            let (ct, cx) = self.current.get();
            self.record(SpecViolation::WriteNotHome {
                dt,
                dx: dx.to_vec(),
                at: (ct, cx.to_vec()),
            });
        }
        let mut array = self.array.borrow_mut();
        if array.in_domain(x) {
            array.set(t, x, value);
        } else {
            // Fold virtual coordinates the way the boundary clone would; Phase 1 accepts
            // the write as long as its *offset* is the home cell.
            let sizes = array.sizes_i64();
            let mut w = x;
            for d in 0..D {
                w[d] = w[d].rem_euclid(sizes[d]);
            }
            array.set(t, w, value);
        }
    }

    fn size(&self, dim: usize) -> i64 {
        self.array.borrow().size(dim) as i64
    }
}

/// Runs the stencil with the Phase-1 interpreter: a plain loop nest over space and time
/// with full shape-compliance checking and boundary-function handling.
///
/// Returns the list of violations (empty means the specification is Pochoir-compliant and
/// the Pochoir Guarantee applies to the optimized Phase-2 execution).
pub fn run_checked<T, K, const D: usize>(
    array: &mut PochoirArray<T, D>,
    spec: &StencilSpec<D>,
    kernel: &K,
    t0: i64,
    t1: i64,
) -> Vec<SpecViolation>
where
    T: Copy,
    K: StencilKernel<T, D>,
{
    let violations = RefCell::new(Vec::new());
    let sizes = array.sizes_i64();
    {
        let cell = RefCell::new(array);
        let view = SpecCheckView {
            array: &cell,
            shape: spec.shape(),
            current: Cell::new((t0, [0; D])),
            violations: &violations,
        };
        for t in t0..t1 {
            let mut iter = pochoir_core::grid::SpaceIter::new(sizes);
            while let Some(x) = iter.next_point() {
                view.current.set((t, x));
                kernel.update(&view, t, x);
            }
        }
    }
    violations.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pochoir_core::boundary::Boundary;
    use pochoir_core::shape::star_shape;

    struct GoodKernel;
    impl StencilKernel<f64, 1> for GoodKernel {
        fn update<A: GridAccess<f64, 1>>(&self, g: &A, t: i64, x: [i64; 1]) {
            let v = 0.5 * (g.get(t, [x[0] - 1]) + g.get(t, [x[0] + 1]));
            g.set(t + 1, x, v);
        }
    }

    struct TooWideKernel;
    impl StencilKernel<f64, 1> for TooWideKernel {
        fn update<A: GridAccess<f64, 1>>(&self, g: &A, t: i64, x: [i64; 1]) {
            // Reads two cells away, but the declared shape only covers radius 1.
            let v = g.get(t, [x[0] - 2]) + g.get(t, [x[0]]);
            g.set(t + 1, x, v);
        }
    }

    struct WrongWriteKernel;
    impl StencilKernel<f64, 1> for WrongWriteKernel {
        fn update<A: GridAccess<f64, 1>>(&self, g: &A, t: i64, x: [i64; 1]) {
            let v = g.get(t, x);
            g.set(t + 1, [x[0] + 1], v); // writes the neighbour, not the home cell
        }
    }

    fn setup() -> (PochoirArray<f64, 1>, StencilSpec<1>) {
        let mut a = PochoirArray::<f64, 1>::new([16]);
        a.register_boundary(Boundary::Periodic);
        a.fill_time_slice(0, |x| x[0] as f64);
        (a, StencilSpec::new(star_shape::<1>(1)))
    }

    #[test]
    fn compliant_kernel_passes() {
        let (mut a, spec) = setup();
        let violations = run_checked(&mut a, &spec, &GoodKernel, 0, 4);
        assert!(violations.is_empty(), "{violations:?}");
        // And it actually computed something.
        assert_ne!(a.snapshot(4), a.snapshot(3));
    }

    #[test]
    fn out_of_shape_read_is_reported() {
        let (mut a, spec) = setup();
        let violations = run_checked(&mut a, &spec, &TooWideKernel, 0, 1);
        assert!(!violations.is_empty());
        assert!(matches!(
            violations[0],
            SpecViolation::ReadOutsideShape { dt: 0, .. }
        ));
        let msg = violations[0].to_string();
        assert!(msg.contains("not covered by the declared Pochoir shape"));
    }

    #[test]
    fn non_home_write_is_reported() {
        let (mut a, spec) = setup();
        let violations = run_checked(&mut a, &spec, &WrongWriteKernel, 0, 1);
        assert!(violations
            .iter()
            .any(|v| matches!(v, SpecViolation::WriteNotHome { .. })));
    }

    #[test]
    fn phase1_result_matches_reference_loops() {
        let (mut a, spec) = setup();
        let mut b = a.clone();
        let violations = run_checked(&mut a, &spec, &GoodKernel, 0, 6);
        assert!(violations.is_empty());
        pochoir_core::engine::run(
            &mut b,
            &spec,
            &GoodKernel,
            0,
            6,
            &pochoir_core::engine::ExecutionPlan::loops_serial(),
            &pochoir_runtime::Serial,
        );
        assert_eq!(a.snapshot(6), b.snapshot(6));
    }
}
