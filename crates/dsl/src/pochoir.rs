//! The `Pochoir` object: the embedded-language entry point mirroring the paper's
//! Section 2 API (`Pochoir_2D heat(shape)`, `Register_Array`, `Register_Boundary`,
//! `Run(T, kernel)`), including the *two-phase* execution strategy and the *Pochoir
//! Guarantee*.

use crate::speccheck::{run_checked, SpecViolation};
use pochoir_core::boundary::Boundary;
use pochoir_core::engine::serving::{shared_program, RegistryLookup};
use pochoir_core::engine::{CompiledProgram, ExecutionPlan, SessionStats};
use pochoir_core::grid::PochoirArray;
use pochoir_core::kernel::{StencilKernel, StencilSpec};
use pochoir_core::shape::Shape;
use pochoir_runtime::{Parallelism, Runtime, Serial};
use std::fmt;
use std::sync::Arc;

/// Errors reported by the `Pochoir` object.
#[derive(Debug)]
pub enum PochoirError {
    /// No array has been registered yet (`Register_Array` was never called).
    NoArrayRegistered,
    /// The registered array does not hold enough time slices for the stencil depth.
    DepthMismatch {
        /// Slices the array holds.
        have: usize,
        /// Slices the shape requires.
        need: usize,
    },
    /// Phase 1 found the specification non-compliant.
    SpecViolations(Vec<SpecViolation>),
}

impl fmt::Display for PochoirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PochoirError::NoArrayRegistered => {
                write!(f, "no Pochoir array registered; call register_array first")
            }
            PochoirError::DepthMismatch { have, need } => write!(
                f,
                "registered array holds {have} time slices but the stencil shape needs {need}"
            ),
            PochoirError::SpecViolations(v) => {
                writeln!(f, "the stencil specification violates its declared shape:")?;
                for violation in v {
                    writeln!(f, "  - {violation}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PochoirError {}

/// What a run needs from the object: the shared executor session, the registered
/// array, and any registry lookup not yet reported to a metrics sink.
type SessionAndArray<'a, T, const D: usize> = (
    Arc<CompiledProgram<D>>,
    &'a mut PochoirArray<T, D>,
    Option<RegistryLookup>,
);

/// A stencil computation object (the paper's `Pochoir_dimD`).
///
/// Holds the static information of the computation — the shape, the registered array and
/// its boundary function, the execution plan — and drives both execution phases:
///
/// * [`Pochoir::run_phase1`] executes the specification under the checking interpreter
///   (the paper's "Pochoir template library"), reporting any shape violations;
/// * [`Pochoir::run`] executes the optimized TRAP algorithm (the paper's Phase 2);
/// * [`Pochoir::run_guaranteed`] chains the two, which is the operational statement of
///   the **Pochoir Guarantee**: a specification accepted by Phase 1 runs without error
///   under Phase 2 and produces the same results.
///
/// Phase 2 executes through a held executor session
/// ([`CompiledProgram`]): the first `run` validates the geometry, resolves the
/// engine strategy and compiles (or fetches) the schedule; every further `Run(T, kern)`
/// on the same object replays the pinned schedule with zero validation and zero cache
/// traffic.  The session is invalidated when the plan or the registered array changes.
///
/// The session is fetched from the process-global
/// [`SessionRegistry`](pochoir_core::engine::serving::SessionRegistry), so two
/// `Pochoir` objects over identical geometry (same shape, plan, extents and window)
/// share one compiled program — and hence one schedule — rather than compiling twice.
///
/// ```
/// use pochoir_core::boundary::Boundary;
/// use pochoir_core::kernel::StencilKernel;
/// use pochoir_core::shape::star_shape;
/// use pochoir_core::view::GridAccess;
/// use pochoir_dsl::Pochoir;
///
/// struct Heat1D; // u(t+1,x) = ¼u(t,x−1) + ½u(t,x) + ¼u(t,x+1)
/// impl StencilKernel<f64, 1> for Heat1D {
///     fn update<A: GridAccess<f64, 1>>(&self, g: &A, t: i64, x: [i64; 1]) {
///         let v = 0.25 * g.get(t, [x[0] - 1]) + 0.5 * g.get(t, [x[0]])
///             + 0.25 * g.get(t, [x[0] + 1]);
///         g.set(t + 1, x, v);
///     }
/// }
///
/// let mut heat = Pochoir::<f64, 1>::with_array(star_shape::<1>(1), [32]);
/// heat.register_boundary(Boundary::Periodic)?;
/// heat.array_mut()?.fill_time_slice(0, |x| x[0] as f64);
/// // The Pochoir Guarantee: Phase 1 checks the kernel, then Phase 2 runs optimized.
/// heat.run_guaranteed(10, &Heat1D)?;
/// assert_eq!(heat.result_time(), 10);
/// # Ok::<(), pochoir_dsl::PochoirError>(())
/// ```
pub struct Pochoir<T, const D: usize> {
    spec: StencilSpec<D>,
    array: Option<PochoirArray<T, D>>,
    plan: ExecutionPlan<D>,
    runtime: Option<Arc<Runtime>>,
    steps_run: i64,
    /// The executor session behind Phase 2 (kernels arrive by reference per `run`, so
    /// the object holds the kernel-independent program half), shared through the
    /// session registry with every other caller of the same geometry.  Re-fetched
    /// lazily after `set_plan`/`register_array`.
    session: Option<Arc<CompiledProgram<D>>>,
    /// The registry lookup that produced `session`, reported to the runtime's metrics
    /// by the next run (the registry itself has no metrics sink).
    pending_registry: Option<RegistryLookup>,
}

impl<T, const D: usize> Pochoir<T, D>
where
    T: Copy + Send + Sync + 'static,
{
    /// Creates a Pochoir object with the given stencil shape
    /// (`Pochoir_2D heat(2D_five_pt)` in Figure 6).
    pub fn new(shape: Shape<D>) -> Self {
        Pochoir {
            spec: StencilSpec::new(shape),
            array: None,
            plan: ExecutionPlan::trap(),
            runtime: None,
            steps_run: 0,
            session: None,
            pending_registry: None,
        }
    }

    /// The stencil specification (shape, slopes, depth).
    pub fn spec(&self) -> &StencilSpec<D> {
        &self.spec
    }

    /// Overrides the execution plan (engine, coarsening, indexing mode).  Invalidates
    /// the held executor session; the next run rebuilds it.
    pub fn set_plan(&mut self, plan: ExecutionPlan<D>) {
        self.plan = plan;
        self.session = None;
        self.pending_registry = None;
    }

    /// Builder-style plan override.
    pub fn with_plan(mut self, plan: ExecutionPlan<D>) -> Self {
        self.set_plan(plan);
        self
    }

    /// Uses a dedicated work-stealing runtime instead of the process-global one.
    pub fn set_runtime(&mut self, runtime: Arc<Runtime>) {
        self.runtime = Some(runtime);
    }

    /// Registers the spatial array participating in the computation
    /// (`heat.Register_Array(u)` in Figure 6).  The array's boundary function should
    /// already have been registered on the array itself.
    pub fn register_array(&mut self, array: PochoirArray<T, D>) -> Result<(), PochoirError> {
        let need = self.spec.shape().time_slices();
        if array.time_slices() < need {
            return Err(PochoirError::DepthMismatch {
                have: array.time_slices(),
                need,
            });
        }
        self.array = Some(array);
        self.steps_run = 0;
        self.session = None;
        self.pending_registry = None;
        Ok(())
    }

    /// Registers (or replaces) the boundary function of the registered array
    /// (`u.Register_Boundary(heat_bv)` in Figure 6).
    pub fn register_boundary(&mut self, boundary: Boundary<T, D>) -> Result<(), PochoirError> {
        match &mut self.array {
            Some(a) => {
                a.register_boundary(boundary);
                Ok(())
            }
            None => Err(PochoirError::NoArrayRegistered),
        }
    }

    /// Shared access to the registered array.
    pub fn array(&self) -> Result<&PochoirArray<T, D>, PochoirError> {
        self.array.as_ref().ok_or(PochoirError::NoArrayRegistered)
    }

    /// Mutable access to the registered array (e.g. for initializing time slices
    /// `0 .. depth`).
    pub fn array_mut(&mut self) -> Result<&mut PochoirArray<T, D>, PochoirError> {
        self.array.as_mut().ok_or(PochoirError::NoArrayRegistered)
    }

    /// Removes and returns the registered array.  Invalidates the executor session.
    pub fn take_array(&mut self) -> Result<PochoirArray<T, D>, PochoirError> {
        self.session = None;
        self.pending_registry = None;
        self.array.take().ok_or(PochoirError::NoArrayRegistered)
    }

    /// The time index at which the results of the computation live after the steps run so
    /// far: `T + k − 1` for `T` executed steps of a depth-`k` stencil (paper, Section 2).
    pub fn result_time(&self) -> i64 {
        self.steps_run + self.spec.depth() as i64 - 1
    }

    /// Total kernel steps executed so far (across resumed runs).
    pub fn steps_run(&self) -> i64 {
        self.steps_run
    }

    fn invocation_range(&self, steps: i64) -> (i64, i64) {
        let t0 = self.spec.shape().first_step() + self.steps_run;
        (t0, t0 + steps)
    }

    /// Ensures the held executor session exists — fetching the shared program for this
    /// geometry from the process-global session registry, which compiles it (for
    /// windows of height `window`) only if no caller has seen the geometry before —
    /// and returns it alongside the registered array and any registry lookup not yet
    /// reported to a metrics sink.
    fn session_and_array(
        &mut self,
        window: i64,
    ) -> Result<SessionAndArray<'_, T, D>, PochoirError> {
        let array = self.array.as_mut().ok_or(PochoirError::NoArrayRegistered)?;
        if self.session.is_none() {
            let (program, lookup) =
                shared_program(&self.spec, &self.plan, array.sizes_i64(), window);
            self.session = Some(program);
            self.pending_registry = Some(lookup);
        }
        Ok((
            Arc::clone(self.session.as_ref().expect("just built")),
            array,
            self.pending_registry.take(),
        ))
    }

    /// Forwards a pending registry lookup to the parallelism provider's metrics.
    fn report_registry<P: Parallelism>(pending: Option<RegistryLookup>, par: &P) {
        if let Some(lookup) = pending {
            lookup.report_to(par);
        }
    }

    /// Eagerly compiles (and pins into the held session's MRU pin set) the schedules
    /// for every window height in `heights`, so subsequent [`run`](Self::run) calls of
    /// those step counts replay a pinned schedule with zero cache traffic — the
    /// `Pochoir`-level face of
    /// [`CompiledProgram::precompile_windows`].  Builds (or fetches from the
    /// process-global session registry) the session if the object does not hold one
    /// yet, keyed by the *first* height.  Returns the number of heights that had to
    /// be fetched from the schedule cache.
    ///
    /// Call it after [`register_array`](Self::register_array) and any
    /// [`set_plan`](Self::set_plan): both invalidate the session and its pins.
    pub fn precompile_windows(&mut self, heights: &[i64]) -> Result<usize, PochoirError> {
        let first = heights.first().copied().unwrap_or(0).max(0);
        let (session, _, pending) = self.session_and_array(first)?;
        // Keep any registry lookup pending so the next run still reports it.
        if pending.is_some() {
            self.pending_registry = pending;
        }
        Ok(session.precompile_windows(heights))
    }

    /// Executor-session counters of the held Phase-2 session: runs, pinned-schedule
    /// reuses, cache fetches and fresh compilations.  `None` before the first run (or
    /// after a plan/array change invalidated the session).
    ///
    /// A steady-state object reports `schedule_compiles` and `schedule_fetches`
    /// constant while `runs`/`schedule_reuses` grow — the observable form of the
    /// "compile once, run many times" contract.  The session is *shared* through the
    /// process-global registry, so the counters aggregate over every `Pochoir` object
    /// (and [`StencilServer`](pochoir_core::engine::serving::StencilServer)) of the
    /// same geometry — a second object over an already-served geometry contributes
    /// runs without ever fetching or compiling.
    pub fn session_stats(&self) -> Option<SessionStats> {
        self.session.as_ref().map(|s| s.stats())
    }

    /// **Phase 2**: runs the optimized engine (TRAP by default) for `steps` further time
    /// steps with the given kernel (`heat.Run(T, heat_fn)` in Figure 6).  Runs may be
    /// resumed: a second call continues from where the first one stopped; repeated runs
    /// of the same step count replay the session's pinned compiled schedule.
    pub fn run<K>(&mut self, steps: i64, kernel: &K) -> Result<(), PochoirError>
    where
        K: StencilKernel<T, D>,
    {
        let (t0, t1) = self.invocation_range(steps);
        let runtime = self.runtime.clone();
        let (session, array, pending) = self.session_and_array(t1 - t0)?;
        match runtime {
            Some(rt) => {
                Self::report_registry(pending, rt.as_ref());
                session.run(array, kernel, t0, t1, rt.as_ref());
            }
            None => {
                Self::report_registry(pending, Runtime::global());
                session.run(array, kernel, t0, t1, Runtime::global());
            }
        }
        self.steps_run += steps;
        Ok(())
    }

    /// Phase 2 with an explicit parallelism provider (useful for deterministic serial
    /// runs in tests).
    pub fn run_with<K, P>(&mut self, steps: i64, kernel: &K, par: &P) -> Result<(), PochoirError>
    where
        K: StencilKernel<T, D>,
        P: Parallelism,
    {
        let (t0, t1) = self.invocation_range(steps);
        let (session, array, pending) = self.session_and_array(t1 - t0)?;
        Self::report_registry(pending, par);
        session.run(array, kernel, t0, t1, par);
        self.steps_run += steps;
        Ok(())
    }

    /// **Phase 1**: runs `steps` time steps under the checking interpreter (the paper's
    /// template-library execution).  On success the array contains the same results the
    /// optimized engine would produce; on failure the violations are reported.
    pub fn run_phase1<K>(&mut self, steps: i64, kernel: &K) -> Result<(), PochoirError>
    where
        K: StencilKernel<T, D>,
    {
        let (t0, t1) = self.invocation_range(steps);
        let spec = self.spec.clone();
        let array = self.array.as_mut().ok_or(PochoirError::NoArrayRegistered)?;
        let violations = run_checked(array, &spec, kernel, t0, t1);
        if violations.is_empty() {
            self.steps_run += steps;
            Ok(())
        } else {
            Err(PochoirError::SpecViolations(violations))
        }
    }

    /// Checks compliance of the kernel on a **copy** of the current state without
    /// advancing the computation: the cheap way to exercise Phase 1 before a long
    /// optimized run.
    pub fn check<K>(&self, steps: i64, kernel: &K) -> Result<(), PochoirError>
    where
        K: StencilKernel<T, D>,
    {
        let array = self.array.as_ref().ok_or(PochoirError::NoArrayRegistered)?;
        let mut copy = array.clone();
        let (t0, t1) = self.invocation_range(steps);
        let violations = run_checked(&mut copy, &self.spec, kernel, t0, t1);
        if violations.is_empty() {
            Ok(())
        } else {
            Err(PochoirError::SpecViolations(violations))
        }
    }

    /// The **Pochoir Guarantee** in executable form: Phase 1 validates the specification
    /// on a copy of the state (a few `check_steps` suffice to exercise every clone), and
    /// only then does Phase 2 run the optimized engine for the requested `steps`.
    pub fn run_guaranteed<K>(&mut self, steps: i64, kernel: &K) -> Result<(), PochoirError>
    where
        K: StencilKernel<T, D>,
    {
        let check_steps = steps.min(2 + self.spec.depth() as i64);
        self.check(check_steps, kernel)?;
        self.run(steps, kernel)
    }
}

impl<T: Copy + Send + Sync + Default + 'static, const D: usize> Pochoir<T, D> {
    /// Convenience constructor: creates the Pochoir object *and* a registered array of
    /// the given spatial extents with the shape-implied number of time slices.
    pub fn with_array(shape: Shape<D>, sizes: [usize; D]) -> Self {
        let depth = shape.depth() as usize;
        let mut p = Self::new(shape);
        let array = PochoirArray::with_depth(sizes, depth);
        p.register_array(array)
            .expect("depth is consistent by construction");
        p
    }
}

/// Deterministic serial executor re-exported for tests and examples.
pub fn serial() -> Serial {
    Serial
}

#[cfg(test)]
mod tests {
    use super::*;
    use pochoir_core::boundary::Boundary;
    use pochoir_core::shape::star_shape;
    use pochoir_core::view::GridAccess;

    struct Heat1D;
    impl StencilKernel<f64, 1> for Heat1D {
        fn update<A: GridAccess<f64, 1>>(&self, g: &A, t: i64, x: [i64; 1]) {
            let v =
                0.25 * g.get(t, [x[0] - 1]) + 0.5 * g.get(t, [x[0]]) + 0.25 * g.get(t, [x[0] + 1]);
            g.set(t + 1, x, v);
        }
    }

    struct BadKernel;
    impl StencilKernel<f64, 1> for BadKernel {
        fn update<A: GridAccess<f64, 1>>(&self, g: &A, t: i64, x: [i64; 1]) {
            g.set(t + 1, x, g.get(t, [x[0] - 3]));
        }
    }

    fn heat_object(n: usize) -> Pochoir<f64, 1> {
        let mut p = Pochoir::with_array(star_shape::<1>(1), [n]);
        p.register_boundary(Boundary::Periodic).unwrap();
        p.array_mut()
            .unwrap()
            .fill_time_slice(0, |x| ((x[0] * 13) % 7) as f64);
        p
    }

    #[test]
    fn run_advances_result_time_per_paper() {
        let mut p = heat_object(32);
        assert_eq!(p.result_time(), 0); // nothing run yet: the initialized slice(s)
        p.run(10, &Heat1D).unwrap();
        // Depth 1: results at time T + k - 1 = 10.
        assert_eq!(p.result_time(), 10);
        p.run(5, &Heat1D).unwrap();
        assert_eq!(p.result_time(), 15);
        assert_eq!(p.steps_run(), 15);
    }

    #[test]
    fn phase1_and_phase2_agree() {
        let kernel = Heat1D;
        let mut a = heat_object(40);
        let mut b = heat_object(40);
        a.run_phase1(12, &kernel).unwrap();
        b.run_with(12, &kernel, &Serial).unwrap();
        assert_eq!(
            a.array().unwrap().snapshot(a.result_time()),
            b.array().unwrap().snapshot(b.result_time())
        );
    }

    #[test]
    fn repeated_runs_reuse_the_compiled_session() {
        // A geometry no other test uses: the session is shared through the global
        // registry, so stats deltas are only deterministic on a private geometry.
        let mut p = heat_object(34);
        assert!(
            p.session_stats().is_none(),
            "no session before the first run"
        );
        p.run(10, &Heat1D).unwrap();
        let first = p.session_stats().unwrap();
        p.run(10, &Heat1D).unwrap();
        let second = p.session_stats().unwrap();
        assert_eq!(
            second.schedule_compiles, first.schedule_compiles,
            "a second run on the same object must compile nothing"
        );
        assert_eq!(
            second.schedule_fetches, first.schedule_fetches,
            "a second run must not even touch the schedule cache"
        );
        assert_eq!(second.schedule_reuses, first.schedule_reuses + 1);
        assert_eq!(second.runs, first.runs + 1);
    }

    #[test]
    fn identical_geometry_objects_share_one_program() {
        // Two independent Pochoir objects over the same (shape, plan, sizes, window)
        // must share one registry program: the second object's first run performs no
        // schedule fetch and no compilation — the observable form of "one session,
        // many callers".  The geometry is unique to this test.
        let mut a = heat_object(46);
        let mut b = heat_object(46);
        a.run_with(9, &Heat1D, &Serial).unwrap();
        let after_a = a.session_stats().unwrap();
        b.run_with(9, &Heat1D, &Serial).unwrap();
        let after_b = b.session_stats().unwrap();
        assert_eq!(
            after_b.schedule_fetches, after_a.schedule_fetches,
            "the second object must reuse the first object's program"
        );
        assert_eq!(after_b.schedule_compiles, after_a.schedule_compiles);
        assert_eq!(after_b.runs, after_a.runs + 1, "shared counters aggregate");
        // And the results agree, of course.
        assert_eq!(
            a.array().unwrap().snapshot(a.result_time()),
            b.array().unwrap().snapshot(b.result_time())
        );
    }

    #[test]
    fn precompiled_windows_replay_without_fetching() {
        // A geometry unique to this test (the session registry is process-global).
        let mut p = heat_object(52);
        // Building the session for height 4 fetches once; height 7 is the extra pin.
        let fetched = p.precompile_windows(&[4, 7]).unwrap();
        assert_eq!(fetched, 1);
        p.run_with(4, &Heat1D, &Serial).unwrap();
        p.run_with(7, &Heat1D, &Serial).unwrap();
        p.run_with(4, &Heat1D, &Serial).unwrap();
        let stats = p.session_stats().unwrap();
        assert_eq!(
            stats.schedule_fetches, 2,
            "the eager build and the height-7 precompile; runs fetch nothing"
        );
        assert_eq!(stats.runs, 3);
    }

    #[test]
    fn plan_change_invalidates_the_session() {
        let mut p = heat_object(24);
        p.run(6, &Heat1D).unwrap();
        assert!(p.session_stats().is_some());
        p.set_plan(ExecutionPlan::strap());
        assert!(
            p.session_stats().is_none(),
            "set_plan must drop the stale session"
        );
        p.run(6, &Heat1D).unwrap();
        assert_eq!(p.steps_run(), 12);
    }

    #[test]
    fn guarantee_rejects_noncompliant_kernels() {
        let mut p = heat_object(32);
        let err = p.run_guaranteed(10, &BadKernel).unwrap_err();
        match err {
            PochoirError::SpecViolations(v) => assert!(!v.is_empty()),
            other => panic!("expected SpecViolations, got {other}"),
        }
        // The optimized phase never ran.
        assert_eq!(p.steps_run(), 0);
    }

    #[test]
    fn guarantee_accepts_compliant_kernels() {
        let mut p = heat_object(32);
        p.run_guaranteed(10, &Heat1D).unwrap();
        assert_eq!(p.steps_run(), 10);
    }

    #[test]
    fn errors_when_no_array_registered() {
        let mut p: Pochoir<f64, 1> = Pochoir::new(star_shape::<1>(1));
        assert!(matches!(
            p.run(1, &Heat1D),
            Err(PochoirError::NoArrayRegistered)
        ));
        assert!(matches!(p.array(), Err(PochoirError::NoArrayRegistered)));
    }

    #[test]
    fn depth_mismatch_is_reported() {
        let shape = pochoir_core::shape::Shape::must(vec![
            pochoir_core::shape::ShapeCell::new(1, [0]),
            pochoir_core::shape::ShapeCell::new(0, [0]),
            pochoir_core::shape::ShapeCell::new(-1, [0]),
        ]);
        let mut p: Pochoir<f64, 1> = Pochoir::new(shape);
        let err = p
            .register_array(PochoirArray::with_depth([8], 1))
            .unwrap_err();
        assert!(matches!(
            err,
            PochoirError::DepthMismatch { have: 2, need: 3 }
        ));
    }

    #[test]
    fn take_array_returns_results() {
        let mut p = heat_object(16);
        p.run(3, &Heat1D).unwrap();
        let t = p.result_time();
        let arr = p.take_array().unwrap();
        assert_eq!(arr.snapshot(t).len(), 16);
        assert!(matches!(p.array(), Err(PochoirError::NoArrayRegistered)));
    }

    #[test]
    fn error_display_is_informative() {
        let e = PochoirError::DepthMismatch { have: 2, need: 3 };
        assert!(e.to_string().contains("time slices"));
        let e2 = PochoirError::NoArrayRegistered;
        assert!(e2.to_string().contains("register_array"));
    }
}
