//! Property-style verification of the Pochoir Guarantee: any specification accepted by
//! the Phase-1 interpreter produces identical results under the optimized Phase-2 engines.

use pochoir_core::boundary::{AxisRule, Boundary};
use pochoir_core::engine::{Coarsening, EngineKind, ExecutionPlan};
use pochoir_dsl::{pochoir_kernel, pochoir_shape, Pochoir, PochoirError};
use proptest::prelude::*;

pochoir_kernel!(
    /// A branchy integer kernel exercising every neighbour of the 5-point shape.
    pub struct Rule2D<u64, 2> { bias: u64 }
    |this, a, t, (x, y)| {
        let n = a.get(t, [x - 1, y]) ^ a.get(t, [x + 1, y]);
        let m = a.get(t, [x, y - 1]).wrapping_add(a.get(t, [x, y + 1]));
        let c = a.get(t, [x, y]);
        let v = if c % 3 == 0 { n.wrapping_add(m) } else { n.wrapping_mul(2).wrapping_sub(m) };
        a.set(t + 1, [x, y], v.wrapping_add(this.bias));
    }
);

fn boundary(id: u8) -> Boundary<u64, 2> {
    match id % 4 {
        0 => Boundary::Periodic,
        1 => Boundary::Constant(7),
        2 => Boundary::Clamp,
        _ => Boundary::Mixed([AxisRule::Clamp, AxisRule::Periodic]),
    }
}

fn build(nx: usize, ny: usize, bid: u8, seed: u64) -> Pochoir<u64, 2> {
    let shape = pochoir_shape![
        (1, 0, 0),
        (0, 0, 0),
        (0, 1, 0),
        (0, -1, 0),
        (0, 0, -1),
        (0, 0, 1)
    ];
    let mut p = Pochoir::<u64, 2>::with_array(shape, [nx, ny]);
    p.register_boundary(boundary(bid)).unwrap();
    p.array_mut().unwrap().fill_time_slice(0, |x| {
        (x[0] as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(x[1] as u64)
            .wrapping_mul(1442695040888963407)
            .wrapping_add(seed)
    });
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Phase 1 (checking interpreter) and Phase 2 (every optimized engine) agree.
    #[test]
    fn pochoir_guarantee_holds(
        nx in 5usize..24,
        ny in 5usize..24,
        steps in 1i64..10,
        bid in 0u8..4,
        seed in 0u64..1000,
        bias in 0u64..5,
    ) {
        let kernel = Rule2D { bias };

        // Phase 1 reference.
        let mut phase1 = build(nx, ny, bid, seed);
        phase1.run_phase1(steps, &kernel).unwrap();
        let reference = phase1.array().unwrap().snapshot(phase1.result_time());

        for engine in [EngineKind::Trap, EngineKind::Strap, EngineKind::LoopsParallel] {
            let mut p = build(nx, ny, bid, seed);
            let plan = ExecutionPlan::new(engine).with_coarsening(Coarsening::new(2, [4, 4]));
            p.set_plan(plan);
            p.run(steps, &kernel).unwrap();
            let got = p.array().unwrap().snapshot(p.result_time());
            prop_assert_eq!(&got, &reference, "engine {:?} violated the guarantee", engine);
        }
    }
}

pochoir_kernel!(
    /// Deliberately non-compliant: reads outside the declared radius-1 shape.
    pub struct Cheater<u64, 2> {}
    |_this, a, t, (x, y)| {
        a.set(t + 1, [x, y], a.get(t, [x - 2, y]));
    }
);

#[test]
fn phase1_rejects_noncompliant_spec_before_phase2_runs() {
    let mut p = build(12, 12, 1, 0);
    match p.run_guaranteed(5, &Cheater {}) {
        Err(PochoirError::SpecViolations(v)) => {
            assert!(!v.is_empty());
            assert!(v[0].to_string().contains("shape"));
        }
        other => panic!("expected spec violations, got {other:?}"),
    }
    assert_eq!(p.steps_run(), 0, "Phase 2 must not have run");
}

#[test]
fn resumed_runs_match_single_run() {
    // Run(T) then Run(T') must equal Run(T + T') — Section 2's resumption semantics.
    let kernel = Rule2D { bias: 3 };
    let mut once = build(20, 17, 0, 42);
    once.run(9, &kernel).unwrap();
    let mut twice = build(20, 17, 0, 42);
    twice.run(4, &kernel).unwrap();
    twice.run(5, &kernel).unwrap();
    assert_eq!(once.result_time(), twice.result_time());
    assert_eq!(
        once.array().unwrap().snapshot(once.result_time()),
        twice.array().unwrap().snapshot(twice.result_time())
    );
}
